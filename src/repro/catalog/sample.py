"""Sample relations: concrete tuples plus per-tuple weight metadata."""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import CatalogError, SchemaError
from repro.mechanisms.base import SamplingMechanism
from repro.relational.expressions import Expr
from repro.relational.relation import Relation


class SampleRelation:
    """A sample of the global population (paper Sec. 3.1, relation kind 2).

    Holds the sampled tuples, a mutable per-tuple weight vector
    (initialised to one, per Sec. 3.2), the population the sample was drawn
    from, the predicate that restricted it (``WHERE email = 'Yahoo'``), and
    — when declared — the sampling mechanism.

    Every sample carries a process-unique ``uid`` and a monotonically
    increasing ``version`` that bumps on every data/weight mutation.  The
    pair is the engine's cache-invalidation contract: anything derived from
    this sample (reweights, fitted generators) is cached under the uid and
    stamped with the version, so mutating one sample never evicts artifacts
    of another, and a dropped-and-recreated sample (fresh uid) can never be
    served a predecessor's artifacts.

    Mutators (:meth:`replace_data`, :meth:`set_weights`, …) run only under
    the engine's write lock; readers under the read lock therefore always
    observe ``relation``, ``_weights`` and ``version`` consistently — the
    exclusion is what makes the multi-step swap (validate, assign tuples,
    assign weights, bump version) appear atomic to every query.
    """

    _uid_counter = itertools.count()

    def __init__(
        self,
        name: str,
        relation: Relation,
        population: str,
        defining_predicate: Expr | None = None,
        mechanism: SamplingMechanism | None = None,
        initial_weights: np.ndarray | None = None,
    ):
        self.name = name
        self.relation = relation
        self.population = population
        self.defining_predicate = defining_predicate
        self.mechanism = mechanism
        self.uid = next(SampleRelation._uid_counter)
        self.version = 0
        if initial_weights is None:
            weights = np.ones(relation.num_rows, dtype=np.float64)
        else:
            weights = np.asarray(initial_weights, dtype=np.float64).copy()
            self._validate_weights(weights, relation.num_rows)
        self._weights = weights

    @staticmethod
    def _validate_weights(weights: np.ndarray, num_rows: int) -> None:
        if weights.shape != (num_rows,):
            raise SchemaError(
                f"weights shape {weights.shape} does not match sample rows {num_rows}"
            )
        if np.any(~np.isfinite(weights)):
            raise CatalogError("sample weights must be finite")
        if np.any(weights < 0):
            raise CatalogError("sample weights must be non-negative")

    # ------------------------------------------------------------------ #
    # Weights (the per-sample metadata of Sec. 3.2)
    # ------------------------------------------------------------------ #

    @property
    def weights(self) -> np.ndarray:
        """A copy of the current weights (mutate via :meth:`set_weights`)."""
        return self._weights.copy()

    @property
    def total_weight(self) -> float:
        return float(np.sum(self._weights))

    @property
    def num_rows(self) -> int:
        return self.relation.num_rows

    def bump_version(self) -> None:
        """Mark the sample's data/weights as changed (invalidates caches)."""
        self.version += 1

    def replace_data(self, relation: Relation, weights: np.ndarray) -> None:
        """Swap in new tuples and weights atomically (validated first)."""
        weights = np.asarray(weights, dtype=np.float64).copy()
        self._validate_weights(weights, relation.num_rows)
        self.relation = relation
        self._weights = weights
        self.bump_version()

    def set_weights(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64).copy()
        self._validate_weights(weights, self.relation.num_rows)
        self._weights = weights
        self.bump_version()

    def reset_weights(self) -> None:
        """Back to the all-ones initialisation."""
        self._weights = np.ones(self.relation.num_rows, dtype=np.float64)
        self.bump_version()

    def scale_weights_to_total(self, target_total: float) -> None:
        """Rescale so weights sum to ``target_total`` (population size)."""
        current = self.total_weight
        if current <= 0:
            raise CatalogError(f"sample {self.name!r} has zero total weight")
        self._weights = self._weights * (target_total / current)
        self.bump_version()

    def effective_sample_size(self) -> float:
        """Kish's effective sample size ``(Σw)² / Σw²``.

        A diagnostic for weight degeneracy: equals ``n`` for uniform
        weights and collapses towards 1 as a few tuples dominate.
        """
        w = self._weights
        denominator = float(np.sum(w * w))
        if denominator == 0.0:
            return 0.0
        return float(np.sum(w)) ** 2 / denominator

    def weighted_relation(self, weight_column: str = "weight") -> Relation:
        """The sample data with the weight vector attached as a column."""
        from repro.relational.dtypes import DType

        return self.relation.with_column(weight_column, DType.FLOAT, self._weights)

    def __repr__(self) -> str:
        mech = f", mechanism={self.mechanism.describe()}" if self.mechanism else ""
        return (
            f"SampleRelation({self.name}, rows={self.num_rows}, "
            f"population={self.population}{mech})"
        )
