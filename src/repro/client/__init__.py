"""Blocking network client for the Mosaic wire server.

:class:`Client` is the public entry point — a thread-safe connection
pool over :class:`Connection`, the single-socket protocol speaker::

    from repro.client import Client

    with Client("127.0.0.1", 7744) as client:
        result = client.execute("SELECT SEMI-OPEN country, COUNT(*) AS n "
                                "FROM EuropeMigrants GROUP BY country")
        print(result.pretty())
"""

from repro.client.client import Client, Connection

__all__ = ["Client", "Connection"]
