"""The blocking Mosaic client: one-socket connections and a pooled client.

A :class:`Connection` speaks the framed protocol of
:mod:`repro.server.protocol` over a single TCP socket: handshake on
connect, then strictly request/response (one statement in flight at a
time — the pipelined/CANCEL side of the protocol is for async clients).
Results arrive **columnar** and are rebuilt zero-decode into the same
:class:`~repro.core.result.QueryResult` the in-process API returns:
numeric columns wrap the received buffers, TEXT columns are born with the
server's dictionary encoding.  Server errors re-raise as their original
:class:`~repro.errors.MosaicError` subclass with the original message.

:class:`Client` adds a simple thread-safe pool: up to ``pool_size``
connections created lazily, borrowed per call, returned on success and
discarded on transport failure.  Each pooled connection is its own server
session (own RNG stream, own defaults) — callers that need a *stable*
session, e.g. for reproducible OPEN answers, should hold a
:class:`Connection` directly.
"""

from __future__ import annotations

import queue
import socket
import threading
from typing import Any

from repro.core.result import QueryResult
from repro.errors import ConnectionLostError, ProtocolError
from repro.server import protocol


def _merge_open_options(
    options: dict | None, open_options: dict | None
) -> dict | None:
    """Fold the ``open_options`` convenience into HELLO ``options["open"]``.

    The server applies these per-connection OPEN execution knobs —
    ``tolerance`` / ``min_repetitions`` / ``max_repetitions`` /
    ``chunk_repetitions`` / ``report_ci`` / ``repetitions`` — to a fresh
    copy of its session config (see ``MosaicServer._connection_config``).
    """
    if open_options is None:
        return options
    merged = dict(options or {})
    merged["open"] = {**merged.get("open", {}), **open_options}
    return merged


class Connection:
    """One socket to a Mosaic server: handshake + blocking request/response."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        options: dict | None = None,
        open_options: dict | None = None,
        timeout: float | None = None,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
    ):
        options = _merge_open_options(options, open_options)
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        self._request_ids = 0
        self._closed = False
        #: True once a request has succeeded on this socket.  The pool uses
        #: it to tell a *stale* connection (idle across a server restart —
        #: safe to retry on a fresh socket) from one that failed on its
        #: very first use (the server itself is likely down).
        self.used = False
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            welcome = self._request(
                protocol.HELLO,
                protocol.json_payload(
                    {
                        "magic": protocol.MAGIC,
                        "version": protocol.PROTOCOL_VERSION,
                        "options": options or {},
                    }
                ),
                expect=protocol.WELCOME,
            )
        except BaseException:
            self._sock.close()
            raise
        handshake = protocol.parse_json_payload(welcome)
        #: Server identification string from the handshake.
        self.server_info: str = handshake.get("server", "")
        #: This connection's session spawn index on the server's engine:
        #: ``engine.connect()`` number ``k`` draws RNG stream ``k``, so the
        #: index is what reproduces this session's OPEN answers in-process.
        self.session_index: int | None = handshake.get("session_index")

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def execute(self, sql: str) -> QueryResult:
        """Run one statement; server errors re-raise as their MosaicError type."""
        payload = self._request(
            protocol.QUERY, sql.encode("utf-8"), expect=protocol.RESULT
        )
        return protocol.decode_result(payload)

    def execute_script(self, sql: str) -> list[QueryResult]:
        """Run a ``;``-separated script, returning one result per statement."""
        payload = self._request(
            protocol.SCRIPT, sql.encode("utf-8"), expect=protocol.RESULT_SET
        )
        return protocol.decode_result_set(payload)

    def query(self, sql: str) -> QueryResult:
        """Alias of :meth:`execute` for read-only callers."""
        return self.execute(sql)

    def query_extended(self, envelope: dict, sql: str) -> tuple[QueryResult, dict]:
        """Send a QUERYX frame; returns the result plus its raw JSON header.

        Fleet-internal: the router uses ``{"mode": "partial"}`` to collect
        a shard's partial aggregate (the header carries the ``"partial"``
        merge recipe) and ``{"mode": "insert", "indices": [...]}`` to apply
        one shard's slice of an INSERT.
        """
        payload = self._request(
            protocol.QUERYX,
            protocol.encode_queryx(envelope, sql),
            expect=protocol.RESULT,
        )
        return protocol.decode_result_with_header(payload)

    def stats(self) -> dict:
        """Server counters plus engine cache statistics."""
        payload = self._request(protocol.STATS, expect=protocol.STATS_RESULT)
        return protocol.parse_json_payload(payload)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Say GOODBYE (best effort) and close the socket.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._request(protocol.GOODBYE, expect=protocol.BYE)
        except (OSError, ProtocolError):
            pass  # closing anyway
        finally:
            self._sock.close()

    def settimeout(self, timeout: float | None) -> None:
        """Adjust the socket timeout after the handshake.

        The constructor's ``timeout`` covers dialing *and* every later
        recv; callers that want a dial deadline but unbounded queries
        (e.g. the fleet router) clear it once connected.
        """
        self._sock.settimeout(timeout)

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Wire plumbing
    # ------------------------------------------------------------------ #

    def _request(
        self, frame_type: int, payload: bytes = b"", *, expect: int
    ) -> bytes:
        if self._closed and frame_type != protocol.GOODBYE:
            raise ProtocolError("connection is closed")
        self._request_ids += 1
        request_id = self._request_ids
        protocol.write_frame(self._sock, frame_type, request_id, payload)
        response_type, response_id, body = protocol.read_frame(
            self._sock, self.max_frame_bytes
        )
        if response_type == protocol.ERROR:
            # Raised before the id check: connection-level refusals (limit
            # reached, bad handshake) answer with request id 0 because the
            # server never read the request they refuse.
            raise protocol.decode_error(body)
        if response_id != request_id:
            raise ProtocolError(
                f"response for request {response_id}, expected {request_id}"
            )
        if response_type != expect:
            raise ProtocolError(
                f"unexpected frame type 0x{response_type:02x} "
                f"(expected 0x{expect:02x})"
            )
        self.used = True
        return body


class Client:
    """A thread-safe pooled client over :class:`Connection`.

    Connections are created lazily up to ``pool_size`` and shared across
    threads; a call borrows one for its duration.  When every connection
    is busy a call blocks until one frees up — the client-side face of the
    server's backpressure.  Transport failures discard the broken
    connection (a later call dials a fresh one) and re-raise.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7744,
        *,
        pool_size: int = 4,
        options: dict | None = None,
        open_options: dict | None = None,
        timeout: float | None = None,
    ):
        if pool_size < 1:
            raise ValueError("pool_size must be at least 1")
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.options = _merge_open_options(options, open_options)
        self.timeout = timeout
        self._idle: "queue.LifoQueue[Connection]" = queue.LifoQueue()
        self._created = 0
        self._mutex = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def execute(self, sql: str) -> QueryResult:
        return self._call(Connection.execute, sql)

    def execute_script(self, sql: str) -> list[QueryResult]:
        return self._call(Connection.execute_script, sql)

    def query(self, sql: str) -> QueryResult:
        return self.execute(sql)

    def stats(self) -> dict:
        return self._call(Connection.stats)

    def metrics(self) -> dict:
        """The server's flat metrics-registry snapshot (the same numbers
        the Prometheus endpoint renders).  Works against both a plain
        server and a fleet router — each puts its registry snapshot under
        the ``metrics`` key of its STATS payload."""
        return self.stats().get("metrics", {})

    def close(self) -> None:
        """Close every pooled connection.  Idempotent.

        Connections currently borrowed by other threads are closed when
        returned (the pool refuses them once closed).
        """
        with self._mutex:
            self._closed = True
        while True:
            try:
                self._idle.get_nowait().close()
            except queue.Empty:
                return

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Pooling
    # ------------------------------------------------------------------ #

    def _call(self, method, *args) -> Any:
        connection = self._acquire()
        try:
            result = method(connection, *args)
        except (OSError, ProtocolError) as exc:
            # Transport is suspect: drop the connection instead of pooling
            # a socket in an unknown protocol state.
            stale = connection.used and isinstance(exc, OSError)
            self._discard(connection)
            if not stale:
                raise
            # The connection had served requests before, so the likeliest
            # cause is a socket gone stale in the pool (server restarted
            # between borrows).  Retry exactly once on a *freshly dialed*
            # connection — another pooled socket could be just as stale.
            return self._retry_once(method, exc, *args)
        except BaseException:
            self._release(connection)
            raise
        self._release(connection)
        return result

    def _retry_once(self, method, cause: OSError, *args) -> Any:
        try:
            connection = self._dial()
        except OSError as exc:
            raise ConnectionLostError(
                f"connection to {self.host}:{self.port} was lost and "
                f"reconnecting failed: {exc}"
            ) from cause
        try:
            result = method(connection, *args)
        except OSError as exc:
            self._discard(connection)
            raise ConnectionLostError(
                f"connection to {self.host}:{self.port} was lost and the "
                f"retry also failed: {exc}"
            ) from cause
        except ProtocolError:
            self._discard(connection)
            raise
        except BaseException:
            self._release(connection)
            raise
        self._release(connection)
        return result

    def _dial(self) -> Connection:
        """Dial a brand-new pooled connection (slot-accounted)."""
        with self._mutex:
            if self._closed:
                raise ProtocolError("client is closed")
            self._created += 1
        try:
            return Connection(
                self.host, self.port, options=self.options, timeout=self.timeout
            )
        except BaseException:
            with self._mutex:
                self._created -= 1
            raise

    def _acquire(self) -> Connection:
        # A discarded connection frees a *slot*, not a queue entry, so a
        # waiter must never block on the queue indefinitely: it polls and
        # re-checks whether it may dial a replacement (or whether the
        # client was closed underneath it) each round.
        while True:
            with self._mutex:
                if self._closed:
                    raise ProtocolError("client is closed")
            try:
                return self._idle.get_nowait()
            except queue.Empty:
                pass
            with self._mutex:
                if self._created < self.pool_size:
                    self._created += 1
                    dial = True
                else:
                    dial = False
            if dial:
                try:
                    return Connection(
                        self.host, self.port, options=self.options, timeout=self.timeout
                    )
                except BaseException:
                    with self._mutex:
                        self._created -= 1
                    raise
            try:
                return self._idle.get(timeout=0.05)
            except queue.Empty:
                continue

    def _release(self, connection: Connection) -> None:
        with self._mutex:
            closed = self._closed
        if closed or connection.closed:
            self._discard(connection)
        else:
            self._idle.put(connection)

    def _discard(self, connection: Connection) -> None:
        with self._mutex:
            self._created -= 1
        try:
            connection.close()
        except OSError:  # pragma: no cover - socket already dead
            pass
