"""Dense contingency-cube IPF (classical Deming–Stephan / Sinkhorn form).

Complementary to the tuple-raking implementation in
:mod:`repro.reweight.ipf`:

- works on an explicit N-dimensional array, so it can place mass in cells
  the sample never observed (used by the ``IPFSynthesizer`` OPEN generator
  for small categorical domains, e.g. the migrants example);
- doubles as an independent implementation to cross-validate raking
  (their fits agree on sample-occupied cells when seeded identically).

Only feasible when the cross-product of attribute domains is small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.catalog.metadata import Marginal
from repro.errors import ConvergenceError, ReweightError
from repro.reweight.ipf import error_trajectory_stalled


@dataclass(frozen=True)
class CubeResult:
    """A fitted joint table over explicit attribute domains."""

    attributes: tuple[str, ...]
    domains: tuple[tuple, ...]  # per-attribute value tuples
    table: np.ndarray  # shape = tuple(len(d) for d in domains)
    iterations: int
    converged: bool
    max_relative_error: float
    stalled: bool = False

    def mass(self, key: tuple) -> float:
        index = tuple(
            self.domains[axis].index(value) for axis, value in enumerate(key)
        )
        return float(self.table[index])

    def to_marginal(self, attributes: Sequence[str]) -> Marginal:
        """Project the fitted joint onto a 1- or 2-attribute marginal."""
        axes = tuple(self.attributes.index(a) for a in attributes)
        keep = tuple(sorted(axes))
        collapsed = self.table.sum(axis=tuple(
            axis for axis in range(self.table.ndim) if axis not in keep
        ))
        if axes != keep:  # requested order differs from storage order
            collapsed = np.transpose(collapsed)
        cells = {}
        domains = [self.domains[a] for a in axes]
        if len(axes) == 1:
            for i, value in enumerate(domains[0]):
                if collapsed[i] > 0:
                    cells[(value,)] = float(collapsed[i])
        else:
            for i, v1 in enumerate(domains[0]):
                for j, v2 in enumerate(domains[1]):
                    if collapsed[i, j] > 0:
                        cells[(v1, v2)] = float(collapsed[i, j])
        return Marginal(list(attributes), cells)


def cube_ipf(
    attributes: Sequence[str],
    domains: Sequence[Sequence],
    marginals: list[Marginal],
    seed_table: np.ndarray | None = None,
    max_iterations: int = 500,
    tolerance: float = 1e-9,
    raise_on_failure: bool = False,
    stall_window: int = 8,
    stall_improvement: float = 0.01,
) -> CubeResult:
    """Fit a dense joint table to the marginals by classical IPF.

    ``seed_table`` carries prior structure (e.g. sample counts); omitted, a
    uniform table is used — the maximum-entropy starting point.  Like
    :func:`repro.reweight.ipf.ipf_reweight`, the loop stops early when the
    error stalls (conflicting marginals oscillate around a misfit floor);
    ``stall_window=0`` disables the detector.
    """
    attributes = tuple(attributes)
    domains = tuple(tuple(domain) for domain in domains)
    if len(attributes) != len(domains):
        raise ReweightError("attributes and domains must align")
    shape = tuple(len(domain) for domain in domains)
    if any(size == 0 for size in shape):
        raise ReweightError("every attribute needs a non-empty domain")

    if seed_table is None:
        table = np.ones(shape, dtype=np.float64)
    else:
        table = np.asarray(seed_table, dtype=np.float64).copy()
        if table.shape != shape:
            raise ReweightError(
                f"seed table shape {table.shape} does not match domains {shape}"
            )
        if np.any(table < 0):
            raise ReweightError("seed table must be non-negative")

    plans = [_marginal_plan(marginal, attributes, domains, shape) for marginal in marginals]

    iterations = 0
    error = np.inf
    stalled = False
    errors: list[float] = []
    for iterations in range(1, max_iterations + 1):
        for axes, target in plans:
            achieved = table.sum(axis=_other_axes(axes, table.ndim))
            factors = np.ones_like(target)
            fittable = (achieved > 0) & (target > 0)
            factors[fittable] = target[fittable] / achieved[fittable]
            factors[target <= 0] = 0.0
            table = table * _expand(factors, axes, table.ndim, shape)
        error = _cube_error(table, plans)
        if error <= tolerance:
            break
        errors.append(error)
        if error_trajectory_stalled(errors, stall_window, stall_improvement):
            stalled = True
            break

    converged = error <= tolerance
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"cube IPF failed to reach tolerance {tolerance:g} "
            f"(max relative error {error:g})",
            iterations=iterations,
        )
    return CubeResult(
        attributes=attributes,
        domains=domains,
        table=table,
        iterations=iterations,
        converged=converged,
        max_relative_error=float(error),
        stalled=stalled,
    )


def _marginal_plan(
    marginal: Marginal,
    attributes: tuple[str, ...],
    domains: tuple[tuple, ...],
    shape: tuple[int, ...],
) -> tuple[tuple[int, ...], np.ndarray]:
    """(axes, dense target array) for one marginal."""
    try:
        axes = tuple(attributes.index(a) for a in marginal.attributes)
    except ValueError as exc:
        raise ReweightError(
            f"marginal attribute missing from cube attributes {attributes}: {exc}"
        ) from exc
    target = np.zeros(tuple(shape[a] for a in axes), dtype=np.float64)
    lookups = [
        {value: position for position, value in enumerate(domains[a])} for a in axes
    ]
    keys = list(marginal.keys())
    try:
        positions = [
            np.asarray([lookup[key[axis]] for key in keys], dtype=np.int64)
            for axis, lookup in enumerate(lookups)
        ]
    except KeyError:
        # Error path only: rescan to name the offending cell.
        for key in keys:
            if any(key[axis] not in lookup for axis, lookup in enumerate(lookups)):
                raise ReweightError(
                    f"marginal cell {key} uses a value outside the declared domain"
                ) from None
        raise  # pragma: no cover - lookups above must contain the culprit
    masses = np.asarray([mass for _, mass in marginal.cells()], dtype=np.float64)
    # One scatter over the flattened target instead of a per-cell store
    # (marginal keys are unique, so plain assignment is exact).
    target.flat[np.ravel_multi_index(tuple(positions), target.shape)] = masses
    # Normalise to increasing cube-axis order so the target's dimensions
    # line up with ``table.sum(axis=other_axes)`` output.
    if axes != tuple(sorted(axes)):
        order = np.argsort(axes)
        target = np.transpose(target, order)
        axes = tuple(sorted(axes))
    return axes, target


def _other_axes(axes: tuple[int, ...], ndim: int) -> tuple[int, ...]:
    return tuple(axis for axis in range(ndim) if axis not in axes)


def _expand(
    factors: np.ndarray, axes: tuple[int, ...], ndim: int, shape: tuple[int, ...]
) -> np.ndarray:
    """Broadcast per-marginal-cell factors back over the full cube.

    ``factors`` has one dimension per marginal attribute, in the
    marginal's declared order; reorder those dimensions into increasing
    cube-axis order, then insert singleton dimensions everywhere else so
    numpy broadcasting does the rest.
    """
    arranged = np.transpose(factors, np.argsort(axes)) if factors.ndim > 1 else factors
    return arranged.reshape(
        [shape[axis] if axis in axes else 1 for axis in range(ndim)]
    )


def _cube_error(table: np.ndarray, plans) -> float:
    worst = 0.0
    for axes, target in plans:
        achieved = table.sum(axis=_other_axes(axes, table.ndim))
        fittable = target > 0
        if not np.any(fittable):
            continue
        relative = np.abs(achieved[fittable] - target[fittable]) / target[fittable]
        worst = max(worst, float(np.max(relative)))
    return worst
