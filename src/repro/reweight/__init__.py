"""SEMI-OPEN query machinery: sample reweighting (paper Sec. 4.1).

Two regimes:

- **Known mechanism** — reweight each tuple by the inverse of its inclusion
  probability (:mod:`repro.reweight.inverse_probability`).
- **Unknown mechanism** — Iterative Proportional Fitting against the
  population marginals (:mod:`repro.reweight.ipf`), the technique Mosaic
  inherits from Themis [42].  Our implementation rakes tuple weights
  directly (classical IPF restricted to sample-occupied cells); a dense
  contingency-cube IPF (:mod:`repro.reweight.cube`) exists for small
  domains and for cross-validating the raking path.
"""

from repro.reweight.ipf import IpfResult, ipf_reweight
from repro.reweight.inverse_probability import (
    declared_mechanism_weights,
    mechanism_weights_from_population,
)

__all__ = [
    "ipf_reweight",
    "IpfResult",
    "mechanism_weights_from_population",
    "declared_mechanism_weights",
]
