"""Iterative Proportional Fitting on tuple weights ("raking").

The paper (Sec. 4.1): *"Mosaic leverages the IPF technique presented in
[42] to answer arbitrary queries over samples.  Specifically, we reweight
the sample so that the given marginals are satisfied."*

Classical IPF ([13] Deming & Stephan 1940, [27] Sinkhorn) iterates over the
target marginals, scaling each contingency cell's mass by
``target / current``.  Operating on *tuple weights* (raking) is the same
algorithm restricted to the cells the sample occupies, keeping weights
within a cell proportional to their current values — which also avoids
materialising the full cross-product contingency cube.

Structural zeros are reported, not hidden: marginal mass in cells with no
sample tuples is unreachable by reweighting alone (``unreachable_mass``),
which is exactly the false-negative gap that motivates OPEN queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.catalog.metadata import Marginal
from repro.errors import ConvergenceError, ReweightError
from repro.relational.relation import Relation
from repro.reweight.contingency import CellAssignment, assign_cells
from repro.reweight.weights import validate_weights


@dataclass(frozen=True)
class IpfResult:
    """Outcome of an IPF run.

    ``max_relative_error`` measures the worst marginal-cell misfit among
    the cells that are *reachable* (target > 0 and occupied by at least one
    sample row); unreachable target mass is reported separately per
    marginal in ``unreachable_mass``.
    """

    weights: np.ndarray
    iterations: int
    converged: bool
    max_relative_error: float
    unreachable_mass: tuple[float, ...]

    @property
    def total_weight(self) -> float:
        return float(np.sum(self.weights))


def ipf_reweight(
    relation: Relation,
    marginals: list[Marginal],
    initial_weights: np.ndarray | None = None,
    max_iterations: int = 200,
    tolerance: float = 1e-8,
    raise_on_failure: bool = False,
) -> IpfResult:
    """Rake ``relation``'s tuple weights to satisfy ``marginals``.

    Parameters
    ----------
    relation:
        The sample tuples.
    marginals:
        1-D / 2-D target marginals whose attributes all exist in
        ``relation``.
    initial_weights:
        Starting weights (all ones when omitted — the paper's
        initialisation, Sec. 3.2).
    max_iterations:
        Full passes over all marginals.
    tolerance:
        Convergence threshold on the maximum relative cell error over
        reachable cells.
    raise_on_failure:
        Raise :class:`ConvergenceError` instead of returning a
        non-converged result.
    """
    if not marginals:
        raise ReweightError("IPF needs at least one marginal")
    if relation.num_rows == 0:
        raise ReweightError("IPF needs a non-empty sample")

    if initial_weights is None:
        weights = np.ones(relation.num_rows, dtype=np.float64)
    else:
        weights = validate_weights(initial_weights).copy()
        if weights.shape[0] != relation.num_rows:
            raise ReweightError(
                f"initial weights length {weights.shape[0]} does not match "
                f"sample rows {relation.num_rows}"
            )

    assignments = [assign_cells(relation, marginal) for marginal in marginals]

    # Rows in cells the marginals give zero mass can never carry weight.
    for assignment in assignments:
        dead_cells = assignment.target_mass <= 0.0
        weights[dead_cells[assignment.row_cell]] = 0.0

    if not np.any(weights > 0):
        raise ReweightError(
            "every sample tuple falls in zero-mass marginal cells; "
            "the sample is disjoint from the declared population"
        )

    iterations = 0
    error = np.inf
    for iterations in range(1, max_iterations + 1):
        for assignment in assignments:
            weights = _rake_once(weights, assignment)
        error = _max_relative_error(weights, assignments)
        if error <= tolerance:
            break

    converged = error <= tolerance
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"IPF failed to reach tolerance {tolerance:g} "
            f"(max relative error {error:g})",
            iterations=iterations,
        )

    return IpfResult(
        weights=weights,
        iterations=iterations,
        converged=converged,
        max_relative_error=float(error),
        unreachable_mass=tuple(a.unreachable_mass() for a in assignments),
    )


def _rake_once(weights: np.ndarray, assignment: CellAssignment) -> np.ndarray:
    """One raking step: scale weights so this marginal is matched exactly."""
    achieved = assignment.achieved_mass(weights)
    factors = np.ones(assignment.num_cells, dtype=np.float64)
    fittable = (achieved > 0.0) & (assignment.target_mass > 0.0)
    factors[fittable] = assignment.target_mass[fittable] / achieved[fittable]
    zero_target = assignment.target_mass <= 0.0
    factors[zero_target] = 0.0
    return weights * factors[assignment.row_cell]


def _max_relative_error(weights: np.ndarray, assignments: list[CellAssignment]) -> float:
    """Worst relative misfit across all reachable marginal cells."""
    worst = 0.0
    for assignment in assignments:
        achieved = assignment.achieved_mass(weights)
        occupied = np.zeros(assignment.num_cells, dtype=bool)
        occupied[np.unique(assignment.row_cell)] = True
        reachable = occupied & (assignment.target_mass > 0.0)
        if not np.any(reachable):
            continue
        relative = np.abs(
            achieved[reachable] - assignment.target_mass[reachable]
        ) / assignment.target_mass[reachable]
        worst = max(worst, float(np.max(relative)))
    return worst


def fitted_marginal(relation: Relation, weights: np.ndarray, marginal: Marginal) -> Marginal:
    """The marginal the weighted sample actually realises (for diagnostics)."""
    return Marginal.from_data(relation, list(marginal.attributes), weights=weights)
