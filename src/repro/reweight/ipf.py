"""Iterative Proportional Fitting on tuple weights ("raking").

The paper (Sec. 4.1): *"Mosaic leverages the IPF technique presented in
[42] to answer arbitrary queries over samples.  Specifically, we reweight
the sample so that the given marginals are satisfied."*

Classical IPF ([13] Deming & Stephan 1940, [27] Sinkhorn) iterates over the
target marginals, scaling each contingency cell's mass by
``target / current``.  Operating on *tuple weights* (raking) is the same
algorithm restricted to the cells the sample occupies, keeping weights
within a cell proportional to their current values — which also avoids
materialising the full cross-product contingency cube.

Structural zeros are reported, not hidden: marginal mass in cells with no
sample tuples is unreachable by reweighting alone (``unreachable_mass``),
which is exactly the false-negative gap that motivates OPEN queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.catalog.metadata import Marginal
from repro.errors import ConvergenceError, ReweightError
from repro.relational.relation import Relation
from repro.reweight.contingency import CellAssignment, assign_cells
from repro.reweight.weights import validate_weights


@dataclass(frozen=True)
class IpfResult:
    """Outcome of an IPF run.

    ``max_relative_error`` measures the worst marginal-cell misfit among
    the cells that are *reachable* (target > 0 and occupied by at least one
    sample row); unreachable target mass is reported separately per
    marginal in ``unreachable_mass``.  ``stalled`` flags runs cut short by
    the stall detector: the error stopped improving (conflicting marginals
    make raking oscillate around a fixed misfit floor), so further passes
    would only burn time without changing the answer quality.
    """

    weights: np.ndarray
    iterations: int
    converged: bool
    max_relative_error: float
    unreachable_mass: tuple[float, ...]
    stalled: bool = False

    @property
    def total_weight(self) -> float:
        return float(np.sum(self.weights))


def ipf_reweight(
    relation: Relation,
    marginals: list[Marginal],
    initial_weights: np.ndarray | None = None,
    max_iterations: int = 200,
    tolerance: float = 1e-8,
    raise_on_failure: bool = False,
    stall_window: int = 8,
    stall_improvement: float = 0.01,
) -> IpfResult:
    """Rake ``relation``'s tuple weights to satisfy ``marginals``.

    Parameters
    ----------
    relation:
        The sample tuples.
    marginals:
        1-D / 2-D target marginals whose attributes all exist in
        ``relation``.
    initial_weights:
        Starting weights (all ones when omitted — the paper's
        initialisation, Sec. 3.2).
    max_iterations:
        Full passes over all marginals.
    tolerance:
        Convergence threshold on the maximum relative cell error over
        reachable cells.
    raise_on_failure:
        Raise :class:`ConvergenceError` instead of returning a
        non-converged result.
    stall_window / stall_improvement:
        Stop early when the best error of the last ``stall_window``
        iterations improved less than ``stall_improvement`` (relative) over
        the best error before the window.  Jointly unsatisfiable marginals
        make raking oscillate forever at a fixed misfit floor; detecting
        the stall returns the same answer quality in a handful of passes
        instead of ``max_iterations``.  ``stall_window=0`` disables.
    """
    if not marginals:
        raise ReweightError("IPF needs at least one marginal")
    if relation.num_rows == 0:
        raise ReweightError("IPF needs a non-empty sample")

    if initial_weights is None:
        weights = np.ones(relation.num_rows, dtype=np.float64)
    else:
        weights = validate_weights(initial_weights).copy()
        if weights.shape[0] != relation.num_rows:
            raise ReweightError(
                f"initial weights length {weights.shape[0]} does not match "
                f"sample rows {relation.num_rows}"
            )

    assignments = [assign_cells(relation, marginal) for marginal in marginals]

    # Rows in cells the marginals give zero mass can never carry weight.
    for assignment in assignments:
        dead_cells = assignment.target_mass <= 0.0
        weights[dead_cells[assignment.row_cell]] = 0.0

    if not np.any(weights > 0):
        raise ReweightError(
            "every sample tuple falls in zero-mass marginal cells; "
            "the sample is disjoint from the declared population"
        )

    plans = [_RakePlan(assignment) for assignment in assignments]
    iterations = 0
    error = np.inf
    stalled = False
    errors: list[float] = []
    for iterations in range(1, max_iterations + 1):
        for plan in plans:
            weights = plan.rake(weights)
        error = _max_relative_error(weights, plans)
        if error <= tolerance:
            break
        errors.append(error)
        if error_trajectory_stalled(errors, stall_window, stall_improvement):
            stalled = True
            break

    converged = error <= tolerance
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"IPF failed to reach tolerance {tolerance:g} "
            f"(max relative error {error:g})",
            iterations=iterations,
        )

    return IpfResult(
        weights=weights,
        iterations=iterations,
        converged=converged,
        max_relative_error=float(error),
        unreachable_mass=tuple(a.unreachable_mass() for a in assignments),
        stalled=stalled,
    )


class _RakePlan:
    """Per-marginal raking state, precomputed once per IPF run.

    Everything that does not depend on the current weights — the fittable
    masks, reachable-cell indices, and the zero-target factor template —
    is hoisted out of the iteration loop, leaving one ``bincount``, one
    masked divide, and one gather-multiply per raking step.
    """

    def __init__(self, assignment: CellAssignment):
        self.assignment = assignment
        self.row_cell = assignment.row_cell
        self.num_cells = assignment.num_cells
        self.target = assignment.target_mass
        self.positive_target = self.target > 0.0
        # Cells with zero target rake to factor 0, others default to 1.
        self.factor_template = np.where(self.positive_target, 1.0, 0.0)
        reachable = assignment.occupied & self.positive_target
        self.reachable = np.flatnonzero(reachable)
        self.reachable_target = self.target[self.reachable]

    def achieved(self, weights: np.ndarray) -> np.ndarray:
        return np.bincount(self.row_cell, weights=weights, minlength=self.num_cells)

    def rake(self, weights: np.ndarray) -> np.ndarray:
        """One raking step: scale weights so this marginal is matched exactly."""
        achieved = self.achieved(weights)
        factors = self.factor_template.copy()
        fittable = self.positive_target & (achieved > 0.0)
        np.divide(self.target, achieved, out=factors, where=fittable)
        return weights * factors[self.row_cell]

    def error(self, weights: np.ndarray) -> float:
        """Worst relative misfit over this marginal's reachable cells."""
        if self.reachable.shape[0] == 0:
            return 0.0
        achieved = self.achieved(weights)[self.reachable]
        relative = np.abs(achieved - self.reachable_target) / self.reachable_target
        return float(np.max(relative))


def _max_relative_error(weights: np.ndarray, plans: list[_RakePlan]) -> float:
    """Worst relative misfit across all reachable marginal cells."""
    worst = 0.0
    for plan in plans:
        worst = max(worst, plan.error(weights))
    return worst


def error_trajectory_stalled(errors: list[float], window: int, improvement: float) -> bool:
    """Has the error trajectory stopped improving?

    True when the best error of the last ``window`` iterations failed to
    improve on the best error before the window by at least ``improvement``
    (relative).  Geometric convergence — even a slow 1 %/iteration — keeps
    clearing the bar; only genuine oscillation around a misfit floor trips
    it.
    """
    if window <= 0 or len(errors) <= window:
        return False
    recent = min(errors[-window:])
    before = min(errors[:-window])
    return recent > (1.0 - improvement) * before


def fitted_marginal(relation: Relation, weights: np.ndarray, marginal: Marginal) -> Marginal:
    """The marginal the weighted sample actually realises (for diagnostics)."""
    return Marginal.from_data(relation, list(marginal.attributes), weights=weights)
