"""Mapping sample tuples onto marginal cells.

IPF needs to know, for every sample row and every marginal, which cell the
row falls in.  The flights data uses exact (whole-number / categorical)
cell values, so the default mapping is exact-value; an optional
equal-width :class:`Binner` supports continuous attributes whose marginals
are histograms over intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.catalog.metadata import Marginal
from repro.errors import ReweightError
from repro.relational.relation import Relation


@dataclass(frozen=True)
class CellAssignment:
    """Rows → marginal cells, for one marginal over one sample relation.

    ``cell_keys`` lists the distinct cells that occur (marginal cells plus
    any sample-only cells); ``row_cell`` maps each sample row to an index
    into ``cell_keys``; ``target_mass[i]`` is the marginal's mass for cell
    ``i`` (0 for cells the marginal does not list).
    """

    cell_keys: tuple[tuple, ...]
    row_cell: np.ndarray
    target_mass: np.ndarray

    @property
    def num_cells(self) -> int:
        return len(self.cell_keys)

    def achieved_mass(self, weights: np.ndarray) -> np.ndarray:
        """Current weighted mass per cell."""
        return np.bincount(self.row_cell, weights=weights, minlength=self.num_cells)

    def unreachable_mass(self, weights: np.ndarray | None = None) -> float:
        """Marginal mass in cells with no sample rows at all.

        This is the mass SEMI-OPEN evaluation can never recover (it would
        need new tuples — the motivation for OPEN queries).
        """
        occupied = np.zeros(self.num_cells, dtype=bool)
        occupied[np.unique(self.row_cell)] = True
        return float(np.sum(self.target_mass[~occupied]))


def assign_cells(relation: Relation, marginal: Marginal) -> CellAssignment:
    """Assign every row of ``relation`` to a cell of ``marginal``.

    Sample values that do not appear in the marginal become extra cells
    with target mass 0 (the marginal asserts those values have zero
    population mass, so IPF drives their weights to zero).
    """
    columns = []
    for attribute in marginal.attributes:
        if attribute not in relation.schema:
            raise ReweightError(
                f"marginal attribute {attribute!r} missing from sample columns "
                f"{list(relation.column_names)}"
            )
        columns.append(relation.column(attribute))

    key_index: dict[tuple, int] = {}
    cell_keys: list[tuple] = []
    masses: list[float] = []
    for key, mass in marginal.cells():
        key_index[key] = len(cell_keys)
        cell_keys.append(key)
        masses.append(mass)

    n = relation.num_rows
    row_cell = np.empty(n, dtype=np.int64)
    for i in range(n):
        key = tuple(_native(col[i]) for col in columns)
        index = key_index.get(key)
        if index is None:
            index = len(cell_keys)
            key_index[key] = index
            cell_keys.append(key)
            masses.append(0.0)
        row_cell[i] = index

    return CellAssignment(
        cell_keys=tuple(cell_keys),
        row_cell=row_cell,
        target_mass=np.asarray(masses, dtype=np.float64),
    )


class Binner:
    """Equal-width binning of a continuous attribute.

    Produces integer bin labels so binned attributes can be used as exact
    marginal cell values: bin ``b`` covers ``[low + b·width, low + (b+1)·width)``
    with the last bin closed on the right.
    """

    def __init__(self, low: float, high: float, bins: int):
        if not bins > 0:
            raise ReweightError(f"need a positive number of bins, got {bins}")
        if not high > low:
            raise ReweightError(f"need high > low, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)
        self.bins = int(bins)

    @classmethod
    def fit(cls, values: np.ndarray, bins: int) -> "Binner":
        values = np.asarray(values, dtype=np.float64)
        low, high = float(np.min(values)), float(np.max(values))
        if high == low:
            high = low + 1.0
        return cls(low, high, bins)

    def assign(self, values: np.ndarray) -> np.ndarray:
        """Bin label per value; out-of-range values clamp to the edge bins."""
        values = np.asarray(values, dtype=np.float64)
        width = (self.high - self.low) / self.bins
        labels = np.floor((values - self.low) / width).astype(np.int64)
        return np.clip(labels, 0, self.bins - 1)

    def midpoints(self) -> np.ndarray:
        width = (self.high - self.low) / self.bins
        return self.low + width * (np.arange(self.bins) + 0.5)


def _native(value):
    if isinstance(value, np.generic):
        return value.item()
    return value
