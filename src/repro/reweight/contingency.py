"""Mapping sample tuples onto marginal cells.

IPF needs to know, for every sample row and every marginal, which cell the
row falls in.  The flights data uses exact (whole-number / categorical)
cell values, so the default mapping is exact-value; an optional
equal-width :class:`Binner` supports continuous attributes whose marginals
are histograms over intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.catalog.metadata import Marginal
from repro.errors import ReweightError
from repro.relational.relation import Relation


@dataclass(frozen=True)
class CellAssignment:
    """Rows → marginal cells, for one marginal over one sample relation.

    ``cell_keys`` lists the distinct cells that occur (marginal cells plus
    any sample-only cells); ``row_cell`` maps each sample row to an index
    into ``cell_keys``; ``target_mass[i]`` is the marginal's mass for cell
    ``i`` (0 for cells the marginal does not list).
    """

    cell_keys: tuple[tuple, ...]
    row_cell: np.ndarray
    target_mass: np.ndarray

    @property
    def num_cells(self) -> int:
        return len(self.cell_keys)

    @cached_property
    def occupied(self) -> np.ndarray:
        """Which cells contain at least one sample row (computed once).

        The IPF loop consults this every iteration; recomputing it from
        ``row_cell`` per call used to dominate the raking cost.
        """
        occupied = np.zeros(self.num_cells, dtype=bool)
        occupied[self.row_cell] = True
        return occupied

    def achieved_mass(self, weights: np.ndarray) -> np.ndarray:
        """Current weighted mass per cell."""
        return np.bincount(self.row_cell, weights=weights, minlength=self.num_cells)

    def unreachable_mass(self, weights: np.ndarray | None = None) -> float:
        """Marginal mass in cells with no sample rows at all.

        This is the mass SEMI-OPEN evaluation can never recover (it would
        need new tuples — the motivation for OPEN queries).
        """
        return float(np.sum(self.target_mass[~self.occupied]))


def assign_cells(relation: Relation, marginal: Marginal) -> CellAssignment:
    """Assign every row of ``relation`` to a cell of ``marginal``.

    Sample values that do not appear in the marginal become extra cells
    with target mass 0 (the marginal asserts those values have zero
    population mass, so IPF drives their weights to zero).

    Vectorized over the relation's memoized dictionary encodings: each
    attribute contributes dense per-row codes, the 1-/2-D code tuples
    collapse to one combined id per row (ravel_multi_index semantics), and
    only the *distinct* combined ids — a few hundred cells, not tens of
    thousands of rows — are matched against the marginal's keys in Python.
    Marginal cells keep their declared order; sample-only cells append in
    first-row-appearance order, exactly as the old per-row loop produced.
    """
    for attribute in marginal.attributes:
        if attribute not in relation.schema:
            raise ReweightError(
                f"marginal attribute {attribute!r} missing from sample columns "
                f"{list(relation.column_names)}"
            )

    key_index: dict[tuple, int] = {}
    cell_keys: list[tuple] = []
    masses: list[float] = []
    for key, mass in marginal.cells():
        key_index[key] = len(cell_keys)
        cell_keys.append(key)
        masses.append(mass)

    n = relation.num_rows
    if n == 0:
        return CellAssignment(
            cell_keys=tuple(cell_keys),
            row_cell=np.empty(0, dtype=np.int64),
            target_mass=np.asarray(masses, dtype=np.float64),
        )

    axis_uniques: list[np.ndarray] = []
    combined = np.zeros(n, dtype=np.int64)
    for attribute in marginal.attributes:
        uniques, codes = relation.dictionary(attribute)
        combined = combined * len(uniques) + codes
        axis_uniques.append(uniques)

    distinct, first_rows, inverse = np.unique(
        combined, return_index=True, return_inverse=True
    )
    cell_of_combo = np.empty(distinct.shape[0], dtype=np.int64)
    # Walk the distinct combos in first-appearance order so sample-only
    # cells are numbered exactly as the row-order loop numbered them.
    for position in np.argsort(first_rows, kind="stable"):
        combo = int(distinct[position])
        if len(axis_uniques) == 1:
            key = (_native(axis_uniques[0][combo]),)
        else:
            major, minor = divmod(combo, len(axis_uniques[1]))
            key = (
                _native(axis_uniques[0][major]),
                _native(axis_uniques[1][minor]),
            )
        index = key_index.get(key)
        if index is None:
            index = len(cell_keys)
            key_index[key] = index
            cell_keys.append(key)
            masses.append(0.0)
        cell_of_combo[position] = index

    return CellAssignment(
        cell_keys=tuple(cell_keys),
        row_cell=cell_of_combo[inverse.astype(np.int64, copy=False)],
        target_mass=np.asarray(masses, dtype=np.float64),
    )


class Binner:
    """Equal-width binning of a continuous attribute.

    Produces integer bin labels so binned attributes can be used as exact
    marginal cell values: bin ``b`` covers ``[low + b·width, low + (b+1)·width)``
    with the last bin closed on the right.
    """

    def __init__(self, low: float, high: float, bins: int):
        if not bins > 0:
            raise ReweightError(f"need a positive number of bins, got {bins}")
        if not high > low:
            raise ReweightError(f"need high > low, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)
        self.bins = int(bins)

    @classmethod
    def fit(cls, values: np.ndarray, bins: int) -> "Binner":
        values = np.asarray(values, dtype=np.float64)
        low, high = float(np.min(values)), float(np.max(values))
        if high == low:
            high = low + 1.0
        return cls(low, high, bins)

    def assign(self, values: np.ndarray) -> np.ndarray:
        """Bin label per value; out-of-range values clamp to the edge bins."""
        values = np.asarray(values, dtype=np.float64)
        width = (self.high - self.low) / self.bins
        labels = np.floor((values - self.low) / width).astype(np.int64)
        return np.clip(labels, 0, self.bins - 1)

    def midpoints(self) -> np.ndarray:
        width = (self.high - self.low) / self.bins
        return self.low + width * (np.arange(self.bins) + 0.5)


def _native(value):
    if isinstance(value, np.generic):
        return value.item()
    return value
