"""Known-mechanism reweighting: weights ``1 / PrS(t)`` (paper Sec. 4.1).

Two entry points, matching the two situations a Mosaic deployment sees:

- :func:`mechanism_weights_from_population` — the reference population is
  materialised (experiment harnesses, synthetic workloads): evaluate the
  mechanism's inclusion probabilities directly.
- :func:`declared_mechanism_weights` — only the *declaration* is available
  (the real Mosaic setting, where populations are never stored).  Uniform
  mechanisms need nothing else; stratified mechanisms recover per-stratum
  population counts from a 1-D marginal over the stratification attribute.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.metadata import Marginal
from repro.catalog.sample import SampleRelation
from repro.errors import ReweightError
from repro.mechanisms.base import SamplingMechanism
from repro.mechanisms.stratified import StratifiedMechanism
from repro.mechanisms.uniform import UniformMechanism
from repro.relational.groupby import group_rows
from repro.relational.relation import Relation


def mechanism_weights_from_population(
    mechanism: SamplingMechanism,
    population: Relation,
    sample_indices: np.ndarray,
) -> np.ndarray:
    """Exact inverse-probability weights given the materialised population."""
    return mechanism.inverse_probability_weights(population, sample_indices)


def declared_mechanism_weights(
    sample: SampleRelation,
    marginals: list[Marginal] | None = None,
) -> np.ndarray:
    """Inverse-probability weights from the sample's declared mechanism.

    Raises :class:`ReweightError` when the declaration alone cannot pin
    down ``PrS(t)`` (e.g. stratified without a marginal over the
    stratification attribute) — the engine then falls back to IPF.
    """
    mechanism = sample.mechanism
    if mechanism is None:
        raise ReweightError(
            f"sample {sample.name!r} has no declared sampling mechanism"
        )
    if isinstance(mechanism, UniformMechanism):
        weight = 100.0 / mechanism.percent
        return np.full(sample.num_rows, weight, dtype=np.float64)
    if isinstance(mechanism, StratifiedMechanism):
        return _stratified_weights(sample, mechanism, marginals or [])
    raise ReweightError(
        f"cannot derive inclusion probabilities for mechanism "
        f"{mechanism.describe()} from its declaration alone"
    )


def _stratified_weights(
    sample: SampleRelation,
    mechanism: StratifiedMechanism,
    marginals: list[Marginal],
) -> np.ndarray:
    """Stratified weights ``N_s / n_s`` using a marginal for the ``N_s``."""
    attribute = mechanism.attribute
    stratum_sizes = _stratum_sizes_from_marginals(attribute, marginals)
    if stratum_sizes is None:
        raise ReweightError(
            f"stratified mechanism on {attribute!r} needs a 1-D marginal over "
            f"{attribute!r} (or a 2-D marginal including it) to recover "
            "per-stratum population counts"
        )
    weights = np.zeros(sample.num_rows, dtype=np.float64)
    for key, indices in group_rows(sample.relation, [attribute]):
        population_count = stratum_sizes.get(key[0])
        if population_count is None:
            raise ReweightError(
                f"sample stratum {key[0]!r} is missing from the marginal over "
                f"{attribute!r}"
            )
        weights[indices] = population_count / len(indices)
    return weights


def _stratum_sizes_from_marginals(
    attribute: str, marginals: list[Marginal]
) -> dict[object, float] | None:
    for marginal in marginals:
        if attribute in marginal.attributes:
            projected = marginal.project(attribute)
            return {key[0]: mass for key, mass in projected.cells()}
    return None
