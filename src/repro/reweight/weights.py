"""Weight-vector utilities shared by the reweighting paths."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReweightError


@dataclass(frozen=True)
class WeightSummary:
    """Diagnostics of a weight vector.

    ``degeneracy`` is ``1 - ESS/n``: 0 for uniform weights, approaching 1
    when a handful of tuples dominate the total weight.
    """

    total: float
    minimum: float
    maximum: float
    effective_sample_size: float
    zero_fraction: float
    degeneracy: float


def summarize(weights: np.ndarray) -> WeightSummary:
    """Summary statistics for a weight vector."""
    weights = np.asarray(weights, dtype=np.float64)
    n = weights.shape[0]
    if n == 0:
        return WeightSummary(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    total = float(np.sum(weights))
    sum_sq = float(np.sum(weights * weights))
    ess = total * total / sum_sq if sum_sq > 0 else 0.0
    return WeightSummary(
        total=total,
        minimum=float(np.min(weights)),
        maximum=float(np.max(weights)),
        effective_sample_size=ess,
        zero_fraction=float(np.mean(weights == 0.0)),
        degeneracy=1.0 - ess / n,
    )


def normalize_to_total(weights: np.ndarray, target_total: float) -> np.ndarray:
    """Scale ``weights`` so they sum to ``target_total``."""
    weights = np.asarray(weights, dtype=np.float64)
    current = float(np.sum(weights))
    if current <= 0.0:
        raise ReweightError("cannot normalise a weight vector with zero total")
    if target_total < 0.0:
        raise ReweightError(f"target total must be non-negative, got {target_total}")
    return weights * (target_total / current)


def uniform_weights(n: int, total: float) -> np.ndarray:
    """``n`` equal weights summing to ``total`` — the Unif baseline.

    This is "uniformly reweighting" a sample to a population size: the
    standard AQP estimator when nothing is known about the sampling bias
    (the paper's ``Unif`` comparison method).
    """
    if n <= 0:
        raise ReweightError(f"need at least one tuple to weight, got n={n}")
    return np.full(n, total / n, dtype=np.float64)


def validate_weights(weights: np.ndarray) -> np.ndarray:
    """Assert weights are finite and non-negative; returns the array."""
    weights = np.asarray(weights, dtype=np.float64)
    if np.any(~np.isfinite(weights)):
        raise ReweightError("weights must be finite")
    if np.any(weights < 0):
        raise ReweightError("weights must be non-negative")
    return weights
