"""Recursive-descent parser for the Mosaic SQL dialect.

Entry points:

- :func:`parse_statement` — exactly one statement (trailing ``;`` allowed).
- :func:`parse_script` — a ``;``-separated list of statements.

The grammar follows the paper's Sec. 3 declarations plus standard
SELECT/CREATE TABLE/INSERT.  See :mod:`repro.sql.ast_nodes` for the AST.
"""

from __future__ import annotations

from typing import Any

from repro.core.visibility import Visibility
from repro.errors import SqlSyntaxError
from repro.relational.dtypes import DType
from repro.relational.expressions import Arithmetic, Expr, Literal, Negate
from repro.relational.predicates import And, Between, Comparison, InList, Like, Not, Or
from repro.sql.ast_nodes import (
    ColumnDef,
    CreateMetadata,
    CreatePopulation,
    CreateSample,
    CreateTable,
    Drop,
    ExplainAnalyze,
    Identifier,
    Insert,
    MechanismSpec,
    OrderKey,
    SelectItem,
    SelectQuery,
    Statement,
    UpdateWeights,
)
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenType

_AGGREGATE_KEYWORDS = frozenset(["COUNT", "SUM", "AVG", "MIN", "MAX"])
_DROP_KINDS = frozenset(["TABLE", "POPULATION", "SAMPLE", "METADATA"])


def parse_statement(text: str) -> Statement:
    """Parse a single SQL statement."""
    parser = _Parser(tokenize(text), text=text)
    statement = parser.parse_statement()
    parser.accept(TokenType.SEMICOLON)
    parser.expect(TokenType.EOF)
    return statement


def parse_script(text: str) -> list[Statement]:
    """Parse a ``;``-separated script into a list of statements."""
    parser = _Parser(tokenize(text), text=text)
    statements: list[Statement] = []
    while not parser.at(TokenType.EOF):
        statements.append(parser.parse_statement())
        if not parser.accept(TokenType.SEMICOLON):
            break
    parser.expect(TokenType.EOF)
    return statements


class _Parser:
    def __init__(self, tokens: list[Token], text: str = ""):
        self._tokens = tokens
        self._text = text
        self._pos = 0

    # ------------------------------------------------------------------ #
    # Token plumbing
    # ------------------------------------------------------------------ #

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def at(self, token_type: TokenType, value: str | None = None) -> bool:
        token = self.current
        if token.type is not token_type:
            return False
        return value is None or token.value == value

    def at_keyword(self, *keywords: str) -> bool:
        return self.current.matches_keyword(*keywords)

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def accept(self, token_type: TokenType, value: str | None = None) -> Token | None:
        if self.at(token_type, value):
            return self.advance()
        return None

    def accept_keyword(self, *keywords: str) -> Token | None:
        if self.at_keyword(*keywords):
            return self.advance()
        return None

    def expect(self, token_type: TokenType, value: str | None = None) -> Token:
        if not self.at(token_type, value):
            token = self.current
            wanted = value or token_type.value
            raise SqlSyntaxError(
                f"expected {wanted}, found {token.value or 'end of input'!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def expect_keyword(self, *keywords: str) -> Token:
        if not self.at_keyword(*keywords):
            token = self.current
            raise SqlSyntaxError(
                f"expected {' or '.join(keywords)}, found {token.value or 'end of input'!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def expect_name(self) -> str:
        """An identifier; also tolerates non-reserved-looking keywords as names."""
        if self.at(TokenType.IDENT):
            return self.advance().value
        token = self.current
        raise SqlSyntaxError(
            f"expected identifier, found {token.value or 'end of input'!r}",
            token.line,
            token.column,
        )

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #

    def parse_statement(self) -> Statement:
        if self.at_keyword("SELECT"):
            return self.parse_select()
        if self.at_keyword("EXPLAIN"):
            return self._parse_explain()
        if self.at_keyword("CREATE"):
            return self._parse_create()
        if self.at_keyword("INSERT"):
            return self._parse_insert()
        if self.at_keyword("UPDATE"):
            return self._parse_update_weights()
        if self.at_keyword("DROP"):
            return self._parse_drop()
        token = self.current
        raise SqlSyntaxError(
            f"expected a statement, found {token.value or 'end of input'!r}",
            token.line,
            token.column,
        )

    def _parse_explain(self) -> ExplainAnalyze:
        """``EXPLAIN ANALYZE <select>`` (plain EXPLAIN is not supported:
        this engine always executes, so the annotated plan is the cheap
        byproduct, not a separate estimation mode)."""
        self.expect_keyword("EXPLAIN")
        self.expect_keyword("ANALYZE")
        start = self._offset_of(self.current)
        query = self.parse_select()
        stop = self._offset_of(self.current)
        sql = None
        if self._text and start is not None and stop is not None:
            sql = self._text[start:stop].strip()
        return ExplainAnalyze(query=query, sql=sql or None)

    def _offset_of(self, token: Token) -> int | None:
        """Character offset of ``token`` in the source text (tokens carry
        1-based line/column)."""
        if not self._text:
            return None
        offset = 0
        line = 1
        while line < token.line:
            newline = self._text.find("\n", offset)
            if newline < 0:
                return None
            offset = newline + 1
            line += 1
        return offset + token.column - 1

    def parse_select(self, allow_mechanism: bool = False) -> SelectQuery | tuple:
        """Parse a SELECT.

        With ``allow_mechanism=True`` (inside ``CREATE SAMPLE``), also
        parses a trailing ``USING MECHANISM ...`` clause and returns
        ``(query, mechanism_or_none)``.
        """
        self.expect_keyword("SELECT")
        visibility = self._parse_visibility()
        distinct = self.accept_keyword("DISTINCT") is not None
        items = self._parse_select_list()
        self.expect_keyword("FROM")
        table = self.expect_name()

        where: Expr | None = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()

        mechanism: MechanismSpec | None = None
        if allow_mechanism and self.at_keyword("USING"):
            mechanism = self._parse_mechanism()

        group_by: tuple[str, ...] = ()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by = tuple(self._parse_name_list())

        order_by: list[OrderKey] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                column = self.expect_name()
                ascending = True
                if self.accept_keyword("DESC"):
                    ascending = False
                else:
                    self.accept_keyword("ASC")
                order_by.append(OrderKey(column, ascending))
                if not self.accept(TokenType.COMMA):
                    break

        limit: int | None = None
        if self.accept_keyword("LIMIT"):
            token = self.expect(TokenType.NUMBER)
            limit = int(token.value)

        query = SelectQuery(
            items=tuple(items),
            table=table,
            visibility=visibility,
            where=where,
            group_by=group_by,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )
        if allow_mechanism:
            return query, mechanism
        return query

    def _parse_visibility(self) -> Visibility | None:
        if self.accept_keyword("CLOSED"):
            return Visibility.CLOSED
        if self.accept_keyword("OPEN"):
            return Visibility.OPEN
        if self.accept_keyword("SEMI"):
            self.expect(TokenType.OPERATOR, "-")
            self.expect_keyword("OPEN")
            return Visibility.SEMI_OPEN
        # Tolerate the underscore spelling SEMI_OPEN (lexes as one IDENT).
        if self.at(TokenType.IDENT) and self.current.value.upper() == "SEMI_OPEN":
            self.advance()
            return Visibility.SEMI_OPEN
        return None

    def _parse_select_list(self) -> list[SelectItem]:
        items = [self._parse_select_item()]
        while self.accept(TokenType.COMMA):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        if self.accept(TokenType.STAR):
            return SelectItem(is_star=True)

        if self.at_keyword(*_AGGREGATE_KEYWORDS):
            func = self.advance().value
            self.expect(TokenType.LPAREN)
            if self.accept(TokenType.STAR):
                expr: Expr | None = None
            else:
                expr = self.parse_expression()
            self.expect(TokenType.RPAREN)
            alias = self._parse_optional_alias()
            return SelectItem(expr=expr, func=func, alias=alias)

        expr = self.parse_expression()
        alias = self._parse_optional_alias()
        return SelectItem(expr=expr, alias=alias)

    def _parse_optional_alias(self) -> str | None:
        if self.accept_keyword("AS"):
            return self.expect_name()
        if self.at(TokenType.IDENT):
            return self.advance().value
        return None

    def _parse_name_list(self) -> list[str]:
        names = [self.expect_name()]
        while self.accept(TokenType.COMMA):
            names.append(self.expect_name())
        return names

    def _parse_create(self) -> Statement:
        self.expect_keyword("CREATE")
        if self.at_keyword("TEMPORARY") or self.at_keyword("TABLE"):
            temporary = self.accept_keyword("TEMPORARY") is not None
            self.expect_keyword("TABLE")
            name = self.expect_name()
            columns = self._parse_column_defs() if self.at(TokenType.LPAREN) else ()
            return CreateTable(name=name, columns=columns, temporary=temporary)

        if self.at_keyword("GLOBAL") or self.at_keyword("POPULATION"):
            is_global = self.accept_keyword("GLOBAL") is not None
            self.expect_keyword("POPULATION")
            name = self.expect_name()
            columns: tuple[ColumnDef, ...] = ()
            if self.at(TokenType.LPAREN) and not self._lparen_starts_select():
                columns = self._parse_column_defs()
            source: SelectQuery | None = None
            if self.accept_keyword("AS"):
                self.expect(TokenType.LPAREN)
                source = self.parse_select()
                self.expect(TokenType.RPAREN)
            return CreatePopulation(
                name=name, columns=columns, is_global=is_global, source=source
            )

        if self.accept_keyword("SAMPLE"):
            name = self.expect_name()
            columns = ()
            if self.at(TokenType.LPAREN) and not self._lparen_starts_select():
                columns = self._parse_column_defs()
            self.expect_keyword("AS")
            self.expect(TokenType.LPAREN)
            query, mechanism = self.parse_select(allow_mechanism=True)
            self.expect(TokenType.RPAREN)
            return CreateSample(name=name, source=query, columns=columns, mechanism=mechanism)

        if self.accept_keyword("METADATA"):
            name = self.expect_name()
            for_population: str | None = None
            if self.accept_keyword("FOR"):
                for_population = self.expect_name()
            self.expect_keyword("AS")
            self.expect(TokenType.LPAREN)
            query = self.parse_select()
            self.expect(TokenType.RPAREN)
            return CreateMetadata(name=name, query=query, for_population=for_population)

        token = self.current
        raise SqlSyntaxError(
            f"expected TABLE, POPULATION, SAMPLE, or METADATA after CREATE, "
            f"found {token.value!r}",
            token.line,
            token.column,
        )

    def _lparen_starts_select(self) -> bool:
        """Distinguish ``(col type, ...)`` from ``(SELECT ...)`` after a name."""
        next_token = self._tokens[self._pos + 1] if self._pos + 1 < len(self._tokens) else None
        return next_token is not None and next_token.matches_keyword("SELECT")

    def _parse_column_defs(self) -> tuple[ColumnDef, ...]:
        self.expect(TokenType.LPAREN)
        defs = []
        while True:
            name = self.expect_name()
            type_token = self.current
            if type_token.type not in (TokenType.IDENT, TokenType.KEYWORD):
                raise SqlSyntaxError(
                    f"expected a type name, found {type_token.value!r}",
                    type_token.line,
                    type_token.column,
                )
            self.advance()
            defs.append(ColumnDef(name, DType.parse(type_token.value)))
            if not self.accept(TokenType.COMMA):
                break
        self.expect(TokenType.RPAREN)
        return tuple(defs)

    def _parse_mechanism(self) -> MechanismSpec:
        self.expect_keyword("USING")
        self.expect_keyword("MECHANISM")
        kind_token = self.expect_keyword("UNIFORM", "STRATIFIED")
        stratify_on: str | None = None
        if kind_token.value == "STRATIFIED":
            self.expect_keyword("ON")
            stratify_on = self.expect_name()
        self.expect_keyword("PERCENT")
        percent_token = self.expect(TokenType.NUMBER)
        return MechanismSpec(
            kind=kind_token.value,
            percent=float(percent_token.value),
            stratify_on=stratify_on,
        )

    def _parse_insert(self) -> Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_name()
        self.expect_keyword("VALUES")
        rows = [self._parse_value_row()]
        while self.accept(TokenType.COMMA):
            rows.append(self._parse_value_row())
        return Insert(table=table, rows=tuple(rows))

    def _parse_value_row(self) -> tuple[Any, ...]:
        self.expect(TokenType.LPAREN)
        values = [self._parse_literal_value()]
        while self.accept(TokenType.COMMA):
            values.append(self._parse_literal_value())
        self.expect(TokenType.RPAREN)
        return tuple(values)

    def _parse_literal_value(self) -> Any:
        negative = self.accept(TokenType.OPERATOR, "-") is not None
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            value = _parse_number(token.value)
            return -value if negative else value
        if negative:
            raise SqlSyntaxError("expected a number after '-'", token.line, token.column)
        if token.type is TokenType.STRING:
            self.advance()
            return token.value
        if token.matches_keyword("TRUE"):
            self.advance()
            return True
        if token.matches_keyword("FALSE"):
            self.advance()
            return False
        raise SqlSyntaxError(
            f"expected a literal value, found {token.value!r}", token.line, token.column
        )

    def _parse_update_weights(self) -> UpdateWeights:
        self.expect_keyword("UPDATE")
        self.expect_keyword("SAMPLE")
        sample = self.expect_name()
        self.expect_keyword("SET")
        self.expect_keyword("WEIGHT")
        self.expect(TokenType.OPERATOR, "=")
        expr = self.parse_expression()
        where: Expr | None = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return UpdateWeights(sample=sample, expr=expr, where=where)

    def _parse_drop(self) -> Drop:
        self.expect_keyword("DROP")
        kind_token = self.expect_keyword(*_DROP_KINDS)
        name = self.expect_name()
        return Drop(kind=kind_token.value, name=name)

    # ------------------------------------------------------------------ #
    # Expressions (precedence: OR < AND < NOT < comparison < + - < * / %)
    # ------------------------------------------------------------------ #

    def parse_expression(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.accept_keyword("OR"):
            left = Or(left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self.accept_keyword("AND"):
            left = And(left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self.accept_keyword("NOT"):
            return Not(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()

        negated = False
        if self.at_keyword("NOT"):
            # Only consume NOT when it introduces IN/BETWEEN/LIKE.
            next_token = self._tokens[self._pos + 1]
            if next_token.matches_keyword("IN", "BETWEEN", "LIKE"):
                self.advance()
                negated = True

        if self.accept_keyword("IN"):
            self.expect(TokenType.LPAREN)
            values = [self._parse_in_value()]
            while self.accept(TokenType.COMMA):
                values.append(self._parse_in_value())
            self.expect(TokenType.RPAREN)
            return InList(left, values, negated=negated)

        if self.accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self.expect_keyword("AND")
            high = self._parse_additive()
            return Between(left, low, high, negated=negated)

        if self.accept_keyword("LIKE"):
            token = self.current
            if token.type is not TokenType.STRING:
                raise SqlSyntaxError(
                    f"LIKE expects a string pattern, found {token.value or 'end of input'!r}"
                )
            self.advance()
            return Like(left, token.value, negated=negated)

        if self.at(TokenType.OPERATOR) and self.current.value in (
            "=", "!=", "<>", "<", "<=", ">", ">=",
        ):
            op = self.advance().value
            right = self._parse_additive()
            return Comparison(op, left, right)

        return left

    def _parse_in_value(self) -> Any:
        """IN-list members are literals (strings, numbers, booleans, barewords)."""
        token = self.current
        if token.type is TokenType.IDENT:
            self.advance()
            return token.value
        return self._parse_literal_value()

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self.at(TokenType.OPERATOR) and self.current.value in ("+", "-"):
            op = self.advance().value
            left = Arithmetic(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            if self.at(TokenType.STAR):
                self.advance()
                left = Arithmetic("*", left, self._parse_unary())
            elif self.at(TokenType.OPERATOR) and self.current.value in ("/", "%"):
                op = self.advance().value
                left = Arithmetic(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self.accept(TokenType.OPERATOR, "-"):
            return Negate(self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            return Literal(_parse_number(token.value))
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.matches_keyword("TRUE"):
            self.advance()
            return Literal(True)
        if token.matches_keyword("FALSE"):
            self.advance()
            return Literal(False)
        if token.type is TokenType.IDENT:
            self.advance()
            return Identifier(token.value)
        if token.matches_keyword("WEIGHT"):
            # WEIGHT is a keyword for UPDATE SAMPLE but a plain column elsewhere.
            self.advance()
            return Identifier("weight")
        if self.accept(TokenType.LPAREN):
            inner = self.parse_expression()
            self.expect(TokenType.RPAREN)
            return inner
        raise SqlSyntaxError(
            f"expected an expression, found {token.value or 'end of input'!r}",
            token.line,
            token.column,
        )


def _parse_number(text: str) -> int | float:
    if any(c in text for c in ".eE"):
        return float(text)
    return int(text)
