"""Tokeniser for the Mosaic SQL dialect.

Supports:

- identifiers / keywords (case-insensitive keywords; identifiers keep case),
- integer and float literals (``42``, ``3.14``, ``1e-7``, ``.5``),
- single-quoted string literals with ``''`` escaping,
- operators ``= != <> < <= > >= + - * / %``,
- punctuation ``( ) , ;`` and ``*``,
- ``--`` line comments.
"""

from __future__ import annotations

from repro.errors import SqlSyntaxError
from repro.sql.tokens import KEYWORDS, Token, TokenType

_OPERATOR_CHARS = frozenset("=!<>+-/%")


def tokenize(text: str) -> list[Token]:
    """Lex ``text`` into tokens, ending with a single EOF token."""
    tokens: list[Token] = []
    line, column = 1, 1
    i, n = 0, len(text)

    def advance(count: int) -> None:
        nonlocal i, line, column
        for _ in range(count):
            if i < n and text[i] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            i += 1

    while i < n:
        char = text[i]

        if char in " \t\r\n":
            advance(1)
            continue

        if char == "-" and i + 1 < n and text[i + 1] == "-":
            while i < n and text[i] != "\n":
                advance(1)
            continue

        start_line, start_column = line, column

        if char == "'":
            value, length = _read_string(text, i, start_line, start_column)
            tokens.append(Token(TokenType.STRING, value, start_line, start_column))
            advance(length)
            continue

        if char.isdigit() or (char == "." and i + 1 < n and text[i + 1].isdigit()):
            value, length = _read_number(text, i)
            tokens.append(Token(TokenType.NUMBER, value, start_line, start_column))
            advance(length)
            continue

        if char.isalpha() or char == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start_line, start_column))
            else:
                tokens.append(Token(TokenType.IDENT, word, start_line, start_column))
            advance(j - i)
            continue

        if char == "(":
            tokens.append(Token(TokenType.LPAREN, "(", start_line, start_column))
            advance(1)
            continue
        if char == ")":
            tokens.append(Token(TokenType.RPAREN, ")", start_line, start_column))
            advance(1)
            continue
        if char == ",":
            tokens.append(Token(TokenType.COMMA, ",", start_line, start_column))
            advance(1)
            continue
        if char == ";":
            tokens.append(Token(TokenType.SEMICOLON, ";", start_line, start_column))
            advance(1)
            continue
        if char == "*":
            tokens.append(Token(TokenType.STAR, "*", start_line, start_column))
            advance(1)
            continue

        if char in _OPERATOR_CHARS:
            two = text[i : i + 2]
            if two in ("!=", "<>", "<=", ">="):
                tokens.append(Token(TokenType.OPERATOR, two, start_line, start_column))
                advance(2)
                continue
            if char == "!":
                raise SqlSyntaxError("unexpected character '!'", start_line, start_column)
            tokens.append(Token(TokenType.OPERATOR, char, start_line, start_column))
            advance(1)
            continue

        raise SqlSyntaxError(f"unexpected character {char!r}", start_line, start_column)

    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens


def _read_string(text: str, start: int, line: int, column: int) -> tuple[str, int]:
    """Read a single-quoted string starting at ``text[start]``.

    Returns ``(value, consumed_length)``; ``''`` inside the string is an
    escaped quote.
    """
    i = start + 1
    n = len(text)
    out: list[str] = []
    while i < n:
        char = text[i]
        if char == "'":
            if i + 1 < n and text[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i - start + 1
        out.append(char)
        i += 1
    raise SqlSyntaxError("unterminated string literal", line, column)


def _read_number(text: str, start: int) -> tuple[str, int]:
    """Read a numeric literal. Supports ``123``, ``1.5``, ``.5``, ``1e-7``."""
    i = start
    n = len(text)
    while i < n and text[i].isdigit():
        i += 1
    if i < n and text[i] == ".":
        i += 1
        while i < n and text[i].isdigit():
            i += 1
    if i < n and text[i] in "eE":
        j = i + 1
        if j < n and text[j] in "+-":
            j += 1
        if j < n and text[j].isdigit():
            i = j
            while i < n and text[i].isdigit():
                i += 1
    return text[start:i], i - start
