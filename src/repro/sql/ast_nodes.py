"""Statement AST for the Mosaic SQL dialect.

Scalar/boolean expressions reuse the relational expression nodes
(:mod:`repro.relational.expressions` / ``predicates``) directly, with one
extra node — :class:`Identifier` — for names that can only be resolved
against a schema at bind time (column reference vs. the paper's bareword
string literals, e.g. ``WHERE email = Yahoo``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.core.visibility import Visibility
from repro.errors import SqlCompileError
from repro.relational.dtypes import DType
from repro.relational.expressions import Expr
from repro.relational.relation import Relation
from repro.relational.schema import Schema


class Identifier(Expr):
    """A bare name whose meaning (column vs. string literal) binds later.

    The parser cannot know the schema, so ``email = Yahoo`` (the paper's
    motivating example uses unquoted barewords) parses ``Yahoo`` into an
    ``Identifier``; :func:`repro.sql.binder.bind_expression` rewrites it to a
    ``ColumnRef`` when the schema has that column and to a TEXT ``Literal``
    otherwise.
    """

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, relation: Relation) -> np.ndarray:
        raise SqlCompileError(
            f"unbound identifier {self.name!r}: bind_expression() must run first"
        )

    def output_dtype(self, schema: Schema) -> DType:
        raise SqlCompileError(
            f"unbound identifier {self.name!r}: bind_expression() must run first"
        )

    def referenced_columns(self) -> frozenset[str]:
        return frozenset()

    def to_sql(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Identifier) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Identifier", self.name))


@dataclass(frozen=True)
class SelectItem:
    """One item in a SELECT list.

    Exactly one of the three shapes:

    - star: ``SELECT *`` (``is_star=True``),
    - aggregate: ``func`` in COUNT/SUM/AVG/MIN/MAX with ``expr`` (``None``
      for ``COUNT(*)``),
    - plain expression: ``expr`` with ``func=None``.
    """

    expr: Expr | None = None
    func: str | None = None
    alias: str | None = None
    is_star: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.func is not None

    def default_alias(self) -> str:
        if self.alias:
            return self.alias
        if self.is_star:
            return "*"
        if self.func is not None:
            arg = "*" if self.expr is None else self.expr.to_sql()
            return f"{self.func}({arg})"
        assert self.expr is not None
        return self.expr.to_sql()


@dataclass(frozen=True)
class OrderKey:
    column: str
    ascending: bool = True


@dataclass(frozen=True)
class SelectQuery:
    """``SELECT [visibility] items FROM table [WHERE] [GROUP BY] [ORDER BY] [LIMIT]``."""

    items: tuple[SelectItem, ...]
    table: str
    visibility: Visibility | None = None
    where: Expr | None = None
    group_by: tuple[str, ...] = ()
    order_by: tuple[OrderKey, ...] = ()
    limit: int | None = None
    distinct: bool = False

    @property
    def has_aggregates(self) -> bool:
        return any(item.is_aggregate for item in self.items)


@dataclass(frozen=True)
class ColumnDef:
    name: str
    dtype: DType


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple[ColumnDef, ...]
    temporary: bool = False


@dataclass(frozen=True)
class Insert:
    table: str
    rows: tuple[tuple[Any, ...], ...]


@dataclass(frozen=True)
class MechanismSpec:
    """``USING MECHANISM UNIFORM PERCENT 10`` / ``STRATIFIED ON a PERCENT 20``."""

    kind: str  # "UNIFORM" | "STRATIFIED"
    percent: float
    stratify_on: str | None = None


@dataclass(frozen=True)
class CreatePopulation:
    name: str
    columns: tuple[ColumnDef, ...] = ()
    is_global: bool = False
    source: SelectQuery | None = None


@dataclass(frozen=True)
class CreateSample:
    name: str
    source: SelectQuery
    columns: tuple[ColumnDef, ...] = ()
    mechanism: MechanismSpec | None = None


@dataclass(frozen=True)
class CreateMetadata:
    name: str
    query: SelectQuery
    for_population: str | None = None


@dataclass(frozen=True)
class UpdateWeights:
    """``UPDATE SAMPLE <name> SET WEIGHT = <expr> [WHERE <pred>]``."""

    sample: str
    expr: Expr
    where: Expr | None = None


@dataclass(frozen=True)
class Drop:
    kind: str  # "TABLE" | "POPULATION" | "SAMPLE" | "METADATA"
    name: str


@dataclass(frozen=True)
class ExplainAnalyze:
    """``EXPLAIN ANALYZE <select>``: execute the query and return its
    trace — per-stage/per-node timings and cache provenance."""

    query: SelectQuery
    #: The inner SELECT's source text when known (it keys the plan cache
    #: exactly as running the bare SELECT would); ``None`` for
    #: programmatic statements.
    sql: str | None = None


Statement = (
    SelectQuery
    | CreateTable
    | Insert
    | CreatePopulation
    | CreateSample
    | CreateMetadata
    | UpdateWeights
    | Drop
    | ExplainAnalyze
)
