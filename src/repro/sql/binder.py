"""Name resolution: bind parsed expressions against a concrete schema.

The parser produces :class:`~repro.sql.ast_nodes.Identifier` nodes for every
bare name.  At bind time (when the target relation's schema is known) each
identifier resolves to either:

- a :class:`~repro.relational.expressions.ColumnRef` when the schema has a
  column of that name (exact match first, then case-insensitive), or
- a TEXT :class:`~repro.relational.expressions.Literal` otherwise — this is
  the paper's bareword convention (``WHERE email = Yahoo``).

Binding rewrites the tree bottom-up and leaves already-bound nodes alone, so
it is idempotent.
"""

from __future__ import annotations

from repro.errors import SqlCompileError
from repro.relational.expressions import Arithmetic, ColumnRef, Expr, Literal, Negate
from repro.relational.predicates import (
    And,
    Between,
    Comparison,
    InList,
    Like,
    Not,
    Or,
    TruePredicate,
)
from repro.relational.schema import Schema
from repro.sql.ast_nodes import Identifier


def bind_expression(expr: Expr, schema: Schema, allow_barewords: bool = True) -> Expr:
    """Resolve every :class:`Identifier` in ``expr`` against ``schema``.

    With ``allow_barewords=False`` an unresolvable identifier raises
    :class:`SqlCompileError` instead of becoming a string literal.
    """
    if isinstance(expr, Identifier):
        return _bind_identifier(expr, schema, allow_barewords)
    if isinstance(expr, (ColumnRef, Literal, TruePredicate)):
        return expr
    if isinstance(expr, Arithmetic):
        return Arithmetic(
            expr.op,
            bind_expression(expr.left, schema, allow_barewords),
            bind_expression(expr.right, schema, allow_barewords),
        )
    if isinstance(expr, Negate):
        return Negate(bind_expression(expr.operand, schema, allow_barewords))
    if isinstance(expr, Comparison):
        return Comparison(
            expr.op,
            bind_expression(expr.left, schema, allow_barewords),
            bind_expression(expr.right, schema, allow_barewords),
        )
    if isinstance(expr, InList):
        return InList(
            bind_expression(expr.operand, schema, allow_barewords),
            expr.values,
            negated=expr.negated,
        )
    if isinstance(expr, Between):
        return Between(
            bind_expression(expr.operand, schema, allow_barewords),
            bind_expression(expr.low, schema, allow_barewords),
            bind_expression(expr.high, schema, allow_barewords),
            negated=expr.negated,
        )
    if isinstance(expr, Like):
        return Like(
            bind_expression(expr.operand, schema, allow_barewords),
            expr.pattern,
            negated=expr.negated,
        )
    if isinstance(expr, And):
        return And(
            bind_expression(expr.left, schema, allow_barewords),
            bind_expression(expr.right, schema, allow_barewords),
        )
    if isinstance(expr, Or):
        return Or(
            bind_expression(expr.left, schema, allow_barewords),
            bind_expression(expr.right, schema, allow_barewords),
        )
    if isinstance(expr, Not):
        return Not(bind_expression(expr.operand, schema, allow_barewords))
    raise SqlCompileError(f"cannot bind expression node of type {type(expr).__name__}")


def _bind_identifier(identifier: Identifier, schema: Schema, allow_barewords: bool) -> Expr:
    name = identifier.name
    if name in schema:
        return ColumnRef(name)
    resolved = resolve_column_name(name, schema)
    if resolved is not None:
        return ColumnRef(resolved)
    if allow_barewords:
        return Literal(name)
    raise SqlCompileError(
        f"unknown column {name!r} (have {list(schema.names)})"
    )


def resolve_column_name(name: str, schema: Schema) -> str | None:
    """Resolve ``name`` to a schema column, case-insensitively if needed.

    Returns the canonical column name, or ``None`` when absent or ambiguous.
    """
    if name in schema:
        return name
    lowered = name.lower()
    matches = [column for column in schema.names if column.lower() == lowered]
    if len(matches) == 1:
        return matches[0]
    return None


def require_column(name: str, schema: Schema) -> str:
    """Like :func:`resolve_column_name` but raising on failure."""
    resolved = resolve_column_name(name, schema)
    if resolved is None:
        raise SqlCompileError(f"unknown column {name!r} (have {list(schema.names)})")
    return resolved
