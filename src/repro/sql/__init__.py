"""The Mosaic SQL dialect.

Standard SQL plus the paper's extensions (Sec. 3):

- ``CREATE [GLOBAL] POPULATION <name> (cols) [AS (SELECT ... FROM <gp> WHERE ...)]``
- ``CREATE SAMPLE <name> [(cols)] AS (SELECT ... FROM <gp> [WHERE ...]
  [USING MECHANISM <mech> PERCENT <p>])``
- ``CREATE METADATA <name> [FOR <population>] AS (SELECT Ai [, Aj], COUNT(*)
  FROM <aux> GROUP BY Ai [, Aj])``
- ``SELECT {CLOSED | SEMI-OPEN | OPEN} ... FROM <population> ...``
- ``UPDATE SAMPLE <name> SET WEIGHT = <expr> [WHERE ...]``

Entry point: :func:`repro.sql.parser.parse_statement` /
:func:`repro.sql.parser.parse_script`.
"""

from repro.sql.parser import parse_script, parse_statement

__all__ = ["parse_statement", "parse_script"]
