"""Token definitions for the Mosaic SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"  # = != <> < <= > >= + - * / %
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    COMMA = "COMMA"
    SEMICOLON = "SEMICOLON"
    STAR = "STAR"  # '*' (doubles as multiplication; parser disambiguates)
    EOF = "EOF"


# Keywords are uppercased by the lexer; identifiers keep their original case.
KEYWORDS = frozenset(
    [
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "AS",
        "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "ASC", "DESC",
        "CREATE", "TABLE", "TEMPORARY", "INSERT", "INTO", "VALUES",
        "POPULATION", "GLOBAL", "SAMPLE", "METADATA", "FOR",
        "USING", "MECHANISM", "PERCENT", "UNIFORM", "STRATIFIED", "ON",
        "CLOSED", "OPEN", "SEMI",
        "UPDATE", "SET", "WEIGHT", "DROP",
        "COUNT", "SUM", "AVG", "MIN", "MAX",
        "TRUE", "FALSE",
        "DISTINCT",
        "EXPLAIN", "ANALYZE",
    ]
)


@dataclass(frozen=True)
class Token:
    """A lexed token with its 1-based source position."""

    type: TokenType
    value: str
    line: int
    column: int

    def matches_keyword(self, *keywords: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in keywords

    def __repr__(self) -> str:
        return f"{self.type.value}({self.value!r})@{self.line}:{self.column}"
