"""SEMI-OPEN query evaluation: sample reweighting (paper Sec. 4.1, Fig. 3).

Decision ladder:

1. **Known mechanism** — inverse-inclusion-probability weights from the
   sample's declaration (exact for uniform; stratified recovers stratum
   sizes from metadata).
2. **Query-population metadata** — IPF directly against the query
   population's marginals, over the sample tuples restricted to the
   population's view predicate (Fig. 3's bottom dashed line; more accurate
   because population-local bias is fit directly).
3. **Global-population metadata** — IPF against the GP marginals over the
   whole sample, then apply the population view predicate (Fig. 3's left
   dashed line).

With none of the three available the query cannot be answered SEMI-OPEN
and a :class:`VisibilityError` explains why.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.catalog import Catalog
from repro.engine.compiler import compile_select, execute_plan
from repro.engine.plan import LogicalPlan
from repro.engine.planner import PlannedSource
from repro.errors import ReweightError, VisibilityError
from repro.relational.relation import Relation
from repro.reweight.inverse_probability import declared_mechanism_weights
from repro.reweight.ipf import ipf_reweight
from repro.sql.ast_nodes import SelectQuery
from repro.sql.binder import bind_expression


def evaluate_semi_open(
    query: SelectQuery,
    source: PlannedSource,
    catalog: Catalog,
    plan: LogicalPlan | None = None,
    reweighted: tuple[Relation, np.ndarray, list[str]] | None = None,
    *,
    parallel=None,
    share_key: tuple | None = None,
) -> tuple[Relation, list[str]]:
    """Answer ``query`` from the reweighted sample.

    ``plan`` is the compiled form of ``query`` over the sample's schema and
    ``reweighted`` a precomputed ``(relation, weights, notes)`` triple —
    both supplied by :class:`~repro.core.database.MosaicDB` on cache hits,
    recomputed here otherwise.  ``parallel`` is the engine's
    :class:`~repro.core.workers.ParallelExecution` context; ``share_key``
    the stable shared-memory identity of the reweighted source (keyed on
    the same version stamp as the reweight cache, so worker processes keep
    reusing one segment across queries).
    """
    if reweighted is None:
        reweighted = reweighted_sample(source, catalog)
    relation, weights, notes = reweighted
    if plan is None:
        plan = compile_select(query, relation.schema, weighted=True)
    return (
        execute_plan(plan, relation, weights, parallel=parallel, share_key=share_key),
        list(notes),
    )


def reweighted_sample(
    source: PlannedSource,
    catalog: Catalog,
) -> tuple[Relation, np.ndarray, list[str]]:
    """The (possibly view-filtered) sample tuples and their debiased weights.

    Shared by SEMI-OPEN evaluation and by anything else that needs a
    debiased sample (e.g. Bayesian-network fitting).
    """
    sample = source.sample
    population = source.population
    gp = catalog.global_population
    notes: list[str] = []

    # --- 1. Known mechanism -> inverse probability weights over the GP. ---
    if sample.mechanism is not None:
        gp_marginals = gp.marginal_list() if gp is not None else []
        try:
            weights = declared_mechanism_weights(sample, gp_marginals)
            notes.append(
                f"SEMI-OPEN: inverse-probability weights from known mechanism "
                f"{sample.mechanism.describe()}"
            )
            relation, weights, view_note = _apply_view(
                sample.relation, weights, population
            )
            notes.extend(view_note)
            return relation, weights, notes
        except ReweightError as exc:
            notes.append(
                f"known mechanism unusable ({exc}); falling back to IPF"
            )

    # --- 2. Metadata on the query population itself. ---
    if population.has_metadata:
        relation, weights0, view_note = _apply_view(
            sample.relation, sample.weights, population
        )
        if relation.num_rows == 0:
            raise VisibilityError(
                f"sample {sample.name!r} has no tuples inside population "
                f"{population.name!r}; SEMI-OPEN cannot answer (OPEN could)"
            )
        result = ipf_reweight(
            relation, population.marginal_list(), initial_weights=weights0
        )
        notes.extend(view_note)
        notes.append(
            f"SEMI-OPEN: IPF against {len(population.marginals)} marginal(s) of "
            f"population {population.name!r} "
            f"({result.iterations} iterations, converged={result.converged})"
        )
        _note_unreachable(result, notes)
        return relation, result.weights, notes

    # --- 3. Metadata on the global population, view applied afterwards. ---
    if gp is not None and gp.has_metadata and gp.name != population.name:
        result = ipf_reweight(
            sample.relation, gp.marginal_list(), initial_weights=sample.weights
        )
        notes.append(
            f"SEMI-OPEN: IPF against global population {gp.name!r} metadata "
            f"({result.iterations} iterations, converged={result.converged}); "
            "query population treated as a view (paper notes lower accuracy "
            "than population-local metadata)"
        )
        _note_unreachable(result, notes)
        relation, weights, view_note = _apply_view(
            sample.relation, result.weights, population
        )
        notes.extend(view_note)
        return relation, weights, notes

    raise VisibilityError(
        f"population {population.name!r} has no usable sampling mechanism and no "
        "marginal metadata; SEMI-OPEN queries need one of the two "
        "(CREATE METADATA ... or declare USING MECHANISM ...)"
    )


def _apply_view(
    relation: Relation,
    weights: np.ndarray,
    population,
) -> tuple[Relation, np.ndarray, list[str]]:
    predicate = population.defining_predicate
    if predicate is None:
        return relation, weights, []
    bound = bind_expression(predicate, relation.schema)
    mask = np.asarray(bound.evaluate(relation), dtype=bool)
    return (
        relation.filter(mask),
        weights[mask],
        [f"applied population view predicate {bound.to_sql()}"],
    )


def _note_unreachable(result, notes: list[str]) -> None:
    unreachable = sum(result.unreachable_mass)
    if unreachable > 0:
        notes.append(
            f"warning: {unreachable:g} units of marginal mass fall in cells "
            "with no sample tuples (false negatives; use OPEN to generate them)"
        )
