"""Query evaluation per visibility level (paper Sec. 4, Fig. 2/3).

- :mod:`repro.engine.executor` — evaluates a bound SELECT over a
  (optionally weighted) relation: filter, group-by, weighted aggregates
  (``COUNT(*) → SUM(weight)`` et al.), order, limit.
- :mod:`repro.engine.planner` — picks the "single, optimal sample" for a
  population query (assumption 2 of Sec. 4) or unions compatible samples
  (the Sec. 7 "Multiple Samples" extension).
- :mod:`repro.engine.closed` — CLOSED: the sample as-is (LAV-view style).
- :mod:`repro.engine.semi_open` — SEMI-OPEN: inverse-probability weights
  when the mechanism is known, IPF against query-population or global
  metadata otherwise (the two dashed paths of Fig. 3).
- :mod:`repro.engine.open_world` — OPEN: pluggable generative models
  (M-SWG, Bayesian network, IPF synthesizer), 10-sample group
  intersection + aggregate averaging (Sec. 5.3).
"""

from repro.engine.executor import execute_select
from repro.engine.open_world import (
    BayesNetGenerator,
    IPFSynthesizer,
    MswgGenerator,
    OpenQueryConfig,
)

__all__ = [
    "execute_select",
    "OpenQueryConfig",
    "MswgGenerator",
    "BayesNetGenerator",
    "IPFSynthesizer",
]
