"""Query evaluation per visibility level (paper Sec. 4, Fig. 2/3).

- :mod:`repro.engine.plan` — the logical-plan node algebra
  (Scan → Filter → Project/Aggregate → Sort → Limit).
- :mod:`repro.engine.compiler` — compiles a SELECT against an input schema
  into a :class:`~repro.engine.plan.LogicalPlan` (all binding/validation
  done once) and executes plans with vectorized kernels.
- :mod:`repro.engine.executor` — convenience compile-and-run wrapper for a
  one-off SELECT over a (optionally weighted) relation.
- :mod:`repro.engine.planner` — picks the "single, optimal sample" for a
  population query (assumption 2 of Sec. 4) or unions compatible samples
  (the Sec. 7 "Multiple Samples" extension), and defines the per-source
  cache identity/version stamps.
- :mod:`repro.engine.closed` — CLOSED: the sample as-is (LAV-view style).
- :mod:`repro.engine.semi_open` — SEMI-OPEN: inverse-probability weights
  when the mechanism is known, IPF against query-population or global
  metadata otherwise (the two dashed paths of Fig. 3).
- :mod:`repro.engine.open_world` — OPEN: pluggable generative models
  (M-SWG, Bayesian network, IPF synthesizer), 10-sample group
  intersection + aggregate averaging (Sec. 5.3).
"""

from repro.engine.compiler import compile_select, execute_plan
from repro.engine.executor import execute_select
from repro.engine.open_world import (
    BayesNetGenerator,
    IPFSynthesizer,
    MswgGenerator,
    OpenQueryConfig,
)
from repro.engine.plan import LogicalPlan

__all__ = [
    "execute_select",
    "compile_select",
    "execute_plan",
    "LogicalPlan",
    "OpenQueryConfig",
    "MswgGenerator",
    "BayesNetGenerator",
    "IPFSynthesizer",
]
