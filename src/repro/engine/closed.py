"""CLOSED query evaluation: the sample as-is, no debiasing.

Paper Sec. 3.3/4: a CLOSED query treats the global population as a global
database and the samples as local views over it — answering with the
sample tuples directly (the LAV data-integration setting).  Population
definitions still apply as view predicates.
"""

from __future__ import annotations

from repro.engine.compiler import compile_select, execute_plan
from repro.engine.plan import LogicalPlan
from repro.engine.planner import PlannedSource
from repro.relational.relation import Relation
from repro.sql.ast_nodes import SelectQuery
from repro.sql.binder import bind_expression


def closed_source(source: PlannedSource) -> tuple[Relation, list[str]]:
    """The raw sample tuples a CLOSED query runs over, view predicate applied."""
    relation = source.sample.relation
    notes = [f"CLOSED: answered from sample {source.sample.name!r} with no reweighting"]

    predicate = source.population.defining_predicate
    if predicate is not None:
        bound = bind_expression(predicate, relation.schema)
        relation = relation.filter(bound.evaluate(relation))
        notes.append(f"applied population view predicate {bound.to_sql()}")

    return relation, notes


def evaluate_closed(
    query: SelectQuery,
    source: PlannedSource,
    plan: LogicalPlan | None = None,
    *,
    parallel=None,
    share_key: tuple | None = None,
) -> tuple[Relation, list[str]]:
    """Answer ``query`` from the raw sample tuples.

    ``plan`` is the compiled form of ``query`` over the sample's schema —
    passed in by :class:`~repro.core.database.MosaicDB` on plan-cache hits,
    compiled here otherwise.  ``parallel`` is the engine's
    :class:`~repro.core.workers.ParallelExecution` context (morsel-driven
    multi-process scans for large samples); ``share_key`` its stable
    shared-memory identity for the view-filtered source (derivable from
    catalog versions, so segments are reused across queries).  Returns the
    result relation plus human-readable notes about what the engine did.
    """
    relation, notes = closed_source(source)
    if plan is None:
        plan = compile_select(query, relation.schema, weighted=False)
    return execute_plan(plan, relation, parallel=parallel, share_key=share_key), notes
