"""CLOSED query evaluation: the sample as-is, no debiasing.

Paper Sec. 3.3/4: a CLOSED query treats the global population as a global
database and the samples as local views over it — answering with the
sample tuples directly (the LAV data-integration setting).  Population
definitions still apply as view predicates.
"""

from __future__ import annotations

from repro.engine.executor import execute_select
from repro.engine.planner import PlannedSource
from repro.relational.relation import Relation
from repro.sql.ast_nodes import SelectQuery
from repro.sql.binder import bind_expression


def evaluate_closed(query: SelectQuery, source: PlannedSource) -> tuple[Relation, list[str]]:
    """Answer ``query`` from the raw sample tuples.

    Returns the result relation plus human-readable notes about what the
    engine did.
    """
    relation = source.sample.relation
    notes = [f"CLOSED: answered from sample {source.sample.name!r} with no reweighting"]

    predicate = source.population.defining_predicate
    if predicate is not None:
        bound = bind_expression(predicate, relation.schema)
        relation = relation.filter(bound.evaluate(relation))
        notes.append(
            f"applied population view predicate {bound.to_sql()}"
        )

    return execute_select(query, relation, weights=None), notes
