"""Compile bound SELECT statements into logical plans, and execute plans.

:func:`compile_select` does every piece of work that depends only on the
query text and the input schema — name resolution, bareword binding, type
validation, aggregate classification, output-schema computation — exactly
once.  :func:`execute_plan` then runs the plan over any relation with that
schema: the raw sample (CLOSED), the reweighted sample (SEMI-OPEN), or each
generated sample (OPEN).

``weights`` threads through execution with the paper's reweighting
semantics: filters subset the weight vector alongside the rows, projections
drop zero-weight rows ("a reweighted tuple with zero weight does not
exist"), and aggregation consumes the weights via the vectorized kernels.
"""

from __future__ import annotations

import numpy as np

from repro.engine.plan import (
    AggregateNode,
    FilterNode,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    SortNode,
)
from repro.errors import SchemaError, SqlCompileError
from repro.relational.aggregates import AggregateSpec
from repro.relational.dtypes import DType
from repro.relational.expressions import ColumnRef, Expr, validate_expression
from repro.relational.kernels import (
    CompositeAggregates,
    grouped_aggregate,
    grouped_aggregate_composite,
)
from repro.relational.ops import distinct as distinct_op
from repro.relational.ops import project_expressions
from repro.relational.predicates import And
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.sql.ast_nodes import SelectItem, SelectQuery
from repro.sql.binder import bind_expression, require_column


def compile_select(
    query: SelectQuery, schema: Schema, weighted: bool = False
) -> LogicalPlan:
    """Bind and validate ``query`` against ``schema``, producing a plan.

    ``weighted`` declares whether execution will supply a weight vector —
    it changes aggregate output dtypes (weighted COUNT/SUM are FLOAT,
    fractional weights) and therefore the plan's output schema, so it is
    part of the plan-cache key.
    """
    nodes: list = []

    if query.where is not None:
        predicate = bind_expression(query.where, schema)
        if validate_expression(predicate, schema) is not DType.BOOL:
            raise SqlCompileError("WHERE predicate must be boolean")
        # Top-level AND conjuncts compile to one FilterNode each; execution
        # ANDs their masks into a single selection vector, so the split
        # costs nothing and keeps plan displays / future per-conjunct
        # optimisations (reordering, short-circuiting) tractable.
        nodes.extend(FilterNode(conjunct) for conjunct in _conjuncts(predicate))

    if query.has_aggregates or query.group_by:
        body = _compile_aggregate(query, schema, weighted)
    else:
        body = _compile_projection(query, schema)
    nodes.append(body)
    current = body.schema

    if query.order_by:
        columns = tuple(require_column(key.column, current) for key in query.order_by)
        nodes.append(SortNode(columns, tuple(key.ascending for key in query.order_by)))
    if query.limit is not None:
        nodes.append(LimitNode(query.limit))

    return LogicalPlan(
        source_schema=schema,
        nodes=tuple(nodes),
        output_schema=current,
        weighted=weighted,
    )


def _conjuncts(predicate) -> list:
    """Flatten top-level ANDs into a list of conjunct predicates."""
    if isinstance(predicate, And):
        return [*_conjuncts(predicate.left), *_conjuncts(predicate.right)]
    return [predicate]


def _compile_projection(query: SelectQuery, schema: Schema) -> ProjectNode:
    exprs: list[Expr] = []
    aliases: list[str] = []
    for item in query.items:
        if item.is_star:
            for name in schema.names:
                exprs.append(ColumnRef(name))
                aliases.append(name)
            continue
        assert item.expr is not None
        exprs.append(bind_expression(item.expr, schema))
        aliases.append(item.alias or item.default_alias())
    fields = [
        Field(alias, validate_expression(expr, schema))
        for expr, alias in zip(exprs, aliases)
    ]
    return ProjectNode(
        exprs=tuple(exprs),
        aliases=tuple(aliases),
        schema=Schema(fields),
        distinct=query.distinct,
    )


def _compile_aggregate(
    query: SelectQuery, schema: Schema, weighted: bool
) -> AggregateNode:
    group_keys = [require_column(name, schema) for name in query.group_by]

    key_items: list[tuple[SelectItem, str]] = []
    agg_items: list[tuple[SelectItem, AggregateSpec]] = []
    for item in query.items:
        if item.is_star:
            raise SqlCompileError("SELECT * cannot be combined with aggregates")
        if item.is_aggregate:
            assert item.func is not None
            expr = None if item.expr is None else bind_expression(item.expr, schema)
            spec = AggregateSpec(item.func, expr, item.alias or item.default_alias())
            agg_items.append((item, spec))
        else:
            column = _as_group_column(item, group_keys, schema)
            key_items.append((item, column))

    fields = [Field(item.alias or column, schema.dtype(column)) for item, column in key_items]
    for item, spec in agg_items:
        fields.append(Field(spec.alias, spec.output_dtype(schema, weighted)))

    return AggregateNode(
        group_keys=tuple(group_keys),
        key_columns=tuple(column for _, column in key_items),
        specs=tuple(spec for _, spec in agg_items),
        schema=Schema(fields),
    )


def _as_group_column(item: SelectItem, group_keys: list[str], schema: Schema) -> str:
    if not isinstance(item.expr, (ColumnRef,)) and not hasattr(item.expr, "name"):
        raise SqlCompileError(
            "non-aggregate SELECT items in an aggregate query must be "
            f"plain GROUP BY columns, got {item.default_alias()!r}"
        )
    name = item.expr.name  # ColumnRef or Identifier both expose .name
    column = require_column(name, schema)
    if column not in group_keys:
        raise SqlCompileError(
            f"column {column!r} appears in SELECT but not in GROUP BY"
        )
    return column


def execute_plan(
    plan: LogicalPlan,
    relation: Relation,
    weights: np.ndarray | None = None,
) -> Relation:
    """Run ``plan`` over ``relation`` (the implicit Scan input).

    The relation's schema must equal the schema the plan was compiled
    against — the invariant that makes cached plans safe to reuse.
    """
    if relation.schema != plan.source_schema:
        raise SchemaError(
            f"plan compiled against {plan.source_schema!r} cannot run over "
            f"{relation.schema!r}"
        )
    if (weights is not None) != plan.weighted:
        raise SchemaError(
            "plan weightedness mismatch: compiled "
            f"{'weighted' if plan.weighted else 'unweighted'} but executed "
            f"{'with' if weights is not None else 'without'} weights"
        )
    # Filters never materialise: each FilterNode evaluates to a boolean
    # mask that ANDs into a single selection vector.  The selection is
    # consumed exactly once — Project materialises the surviving rows (one
    # copy, with dictionary encodings sliced along), while Aggregate hands
    # it straight to the grouped kernels, which slice the scan relation's
    # memoized group codes instead of re-encoding filtered columns.
    selection: np.ndarray | None = None
    for node in plan.nodes:
        if isinstance(node, FilterNode):
            mask = np.asarray(node.predicate.evaluate(relation), dtype=bool)
            selection = mask if selection is None else selection & mask
        elif isinstance(node, ProjectNode):
            if weights is not None:
                # A reweighted tuple with zero weight "does not exist".
                zero_alive = weights > 0.0
                selection = (
                    zero_alive if selection is None else selection & zero_alive
                )
                weights = None
            if selection is not None:
                relation = relation.filter(selection)
                selection = None
            relation = project_expressions(relation, node.exprs, node.aliases)
            if node.distinct:
                relation = distinct_op(relation)
        elif isinstance(node, AggregateNode):
            relation = grouped_aggregate(
                relation,
                node.group_keys,
                node.key_columns,
                node.specs,
                node.schema,
                weights,
                selection,
            )
            weights = None
            selection = None
        elif isinstance(node, SortNode):
            relation = relation.sort_by(list(node.columns), list(node.ascending))
        elif isinstance(node, LimitNode):
            relation = relation.head(node.count)
        else:  # pragma: no cover - exhaustive over PlanNode
            raise SqlCompileError(f"unknown plan node {type(node).__name__}")
    return relation


def execute_plan_composite(
    plan: LogicalPlan,
    relation: Relation,
    rep_ids: np.ndarray,
    repetitions: int,
    weights: np.ndarray,
) -> tuple[AggregateNode, CompositeAggregates]:
    """Run an aggregate ``plan`` once over a batched OPEN generation.

    ``relation`` stacks ``repetitions`` generated samples (``rep_ids``
    assigns each row to its repetition); filters evaluate over the whole
    batch into one selection vector, and the aggregate reduces composite
    ``(rep, group)`` codes in a single kernel pass — the query executes
    *once* instead of once per repetition.  Returns the plan's aggregate
    node plus the per-(repetition, group) results for
    :func:`~repro.engine.open_world.combine_composite_answers`; Sort/Limit
    nodes are intentionally not handled here — ordering is applied to the
    combined answer, and plans with LIMIT take the per-repetition path
    (a per-repetition LIMIT changes which groups each answer contains).
    """
    if relation.schema != plan.source_schema:
        raise SchemaError(
            f"plan compiled against {plan.source_schema!r} cannot run over "
            f"{relation.schema!r}"
        )
    if not plan.weighted:
        raise SchemaError("batched OPEN execution requires a weighted plan")
    selection: np.ndarray | None = None
    for node in plan.nodes:
        if isinstance(node, FilterNode):
            mask = np.asarray(node.predicate.evaluate(relation), dtype=bool)
            selection = mask if selection is None else selection & mask
        elif isinstance(node, AggregateNode):
            return node, grouped_aggregate_composite(
                relation,
                node.group_keys,
                node.specs,
                rep_ids,
                repetitions,
                weights,
                selection,
            )
        elif isinstance(node, (SortNode, LimitNode)):
            raise SchemaError(
                "composite execution saw a Sort/Limit node before the "
                "aggregate; this plan must use the per-repetition path"
            )
        else:
            raise SchemaError(
                "composite execution requires an aggregate plan, got "
                f"{type(node).__name__}"
            )
    raise SchemaError("composite execution requires an aggregate plan")
