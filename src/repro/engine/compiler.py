"""Compile bound SELECT statements into logical plans, and execute plans.

:func:`compile_select` does every piece of work that depends only on the
query text and the input schema — name resolution, bareword binding, type
validation, aggregate classification, output-schema computation — exactly
once.  :func:`execute_plan` then runs the plan over any relation with that
schema: the raw sample (CLOSED), the reweighted sample (SEMI-OPEN), or each
generated sample (OPEN).

``weights`` threads through execution with the paper's reweighting
semantics: filters subset the weight vector alongside the rows, projections
drop zero-weight rows ("a reweighted tuple with zero weight does not
exist"), and aggregation consumes the weights via the vectorized kernels.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.observability.trace import current_trace

from repro.engine.plan import (
    AggregateNode,
    FilterNode,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    SortNode,
)
from repro.errors import SchemaError, SqlCompileError
from repro.relational.aggregates import AggregateSpec
from repro.relational.dtypes import DType
from repro.relational.expressions import ColumnRef, Expr, validate_expression
from repro.relational.kernels import (
    CompositeAggregates,
    composite_aggregate_partial,
    encoded_group_domain,
    finalize_grouped_partials,
    grouped_aggregate,
    grouped_aggregate_composite,
    grouped_aggregate_partial,
    merge_grouped_partials,
)
from repro.relational.ops import distinct as distinct_op
from repro.relational.ops import project_expressions
from repro.relational.predicates import And
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.sql.ast_nodes import SelectItem, SelectQuery
from repro.sql.binder import bind_expression, require_column


def compile_select(
    query: SelectQuery, schema: Schema, weighted: bool = False
) -> LogicalPlan:
    """Bind and validate ``query`` against ``schema``, producing a plan.

    ``weighted`` declares whether execution will supply a weight vector —
    it changes aggregate output dtypes (weighted COUNT/SUM are FLOAT,
    fractional weights) and therefore the plan's output schema, so it is
    part of the plan-cache key.
    """
    nodes: list = []

    if query.where is not None:
        predicate = bind_expression(query.where, schema)
        if validate_expression(predicate, schema) is not DType.BOOL:
            raise SqlCompileError("WHERE predicate must be boolean")
        # Top-level AND conjuncts compile to one FilterNode each; execution
        # ANDs their masks into a single selection vector, so the split
        # costs nothing and keeps plan displays / future per-conjunct
        # optimisations (reordering, short-circuiting) tractable.
        nodes.extend(FilterNode(conjunct) for conjunct in _conjuncts(predicate))

    if query.has_aggregates or query.group_by:
        body = _compile_aggregate(query, schema, weighted)
    else:
        body = _compile_projection(query, schema)
    nodes.append(body)
    current = body.schema

    if query.order_by:
        columns = tuple(require_column(key.column, current) for key in query.order_by)
        nodes.append(SortNode(columns, tuple(key.ascending for key in query.order_by)))
    if query.limit is not None:
        nodes.append(LimitNode(query.limit))

    return LogicalPlan(
        source_schema=schema,
        nodes=tuple(nodes),
        output_schema=current,
        weighted=weighted,
    )


def _conjuncts(predicate) -> list:
    """Flatten top-level ANDs into a list of conjunct predicates."""
    if isinstance(predicate, And):
        return [*_conjuncts(predicate.left), *_conjuncts(predicate.right)]
    return [predicate]


def _compile_projection(query: SelectQuery, schema: Schema) -> ProjectNode:
    exprs: list[Expr] = []
    aliases: list[str] = []
    for item in query.items:
        if item.is_star:
            for name in schema.names:
                exprs.append(ColumnRef(name))
                aliases.append(name)
            continue
        assert item.expr is not None
        exprs.append(bind_expression(item.expr, schema))
        aliases.append(item.alias or item.default_alias())
    fields = [
        Field(alias, validate_expression(expr, schema))
        for expr, alias in zip(exprs, aliases)
    ]
    return ProjectNode(
        exprs=tuple(exprs),
        aliases=tuple(aliases),
        schema=Schema(fields),
        distinct=query.distinct,
    )


def _compile_aggregate(
    query: SelectQuery, schema: Schema, weighted: bool
) -> AggregateNode:
    group_keys = [require_column(name, schema) for name in query.group_by]

    key_items: list[tuple[SelectItem, str]] = []
    agg_items: list[tuple[SelectItem, AggregateSpec]] = []
    for item in query.items:
        if item.is_star:
            raise SqlCompileError("SELECT * cannot be combined with aggregates")
        if item.is_aggregate:
            assert item.func is not None
            expr = None if item.expr is None else bind_expression(item.expr, schema)
            spec = AggregateSpec(item.func, expr, item.alias or item.default_alias())
            agg_items.append((item, spec))
        else:
            column = _as_group_column(item, group_keys, schema)
            key_items.append((item, column))

    fields = [Field(item.alias or column, schema.dtype(column)) for item, column in key_items]
    for item, spec in agg_items:
        fields.append(Field(spec.alias, spec.output_dtype(schema, weighted)))

    return AggregateNode(
        group_keys=tuple(group_keys),
        key_columns=tuple(column for _, column in key_items),
        specs=tuple(spec for _, spec in agg_items),
        schema=Schema(fields),
    )


def _as_group_column(item: SelectItem, group_keys: list[str], schema: Schema) -> str:
    if not isinstance(item.expr, (ColumnRef,)) and not hasattr(item.expr, "name"):
        raise SqlCompileError(
            "non-aggregate SELECT items in an aggregate query must be "
            f"plain GROUP BY columns, got {item.default_alias()!r}"
        )
    name = item.expr.name  # ColumnRef or Identifier both expose .name
    column = require_column(name, schema)
    if column not in group_keys:
        raise SqlCompileError(
            f"column {column!r} appears in SELECT but not in GROUP BY"
        )
    return column


def execute_plan(
    plan: LogicalPlan,
    relation: Relation,
    weights: np.ndarray | None = None,
    *,
    parallel=None,
    share_key: tuple | None = None,
) -> Relation:
    """Run ``plan`` over ``relation`` (the implicit Scan input).

    The relation's schema must equal the schema the plan was compiled
    against — the invariant that makes cached plans safe to reuse.

    ``parallel`` is an execution context (duck-typed; see
    :class:`repro.core.workers.ParallelExecution`).  When supplied and the
    relation exceeds the context's morsel threshold, decomposable aggregate
    plans run morsel-partitioned: the scan splits into fixed row ranges,
    each morsel reduces to mergeable partials, and the partials merge in
    morsel order.  Crucially the *decomposition is a function of the data
    and the threshold only* — a context with zero worker processes runs the
    identical morsel loop in-process — so results never depend on how many
    workers (if any) executed the morsels.  They *are* a function of the
    threshold itself: float SUM/AVG partials accumulate per-morsel and
    merge in morsel order, which can differ in the last ulp from the
    single-pass kernels (so changing ``MOSAIC_MORSEL_ROWS``, or comparing
    against a run without a parallel context, is a numerics-affecting
    configuration change — see ARCHITECTURE.md §7).  Plans the morsel
    path cannot decompose (projections, numeric/unencoded group keys,
    degenerate key domains) fall back to the dense single-pass kernels
    below.
    """
    if relation.schema != plan.source_schema:
        raise SchemaError(
            f"plan compiled against {plan.source_schema!r} cannot run over "
            f"{relation.schema!r}"
        )
    if (weights is not None) != plan.weighted:
        raise SchemaError(
            "plan weightedness mismatch: compiled "
            f"{'weighted' if plan.weighted else 'unweighted'} but executed "
            f"{'with' if weights is not None else 'without'} weights"
        )
    if parallel is not None and relation.num_rows > parallel.morsel_rows:
        layout = partition_layout(plan, relation)
        if layout is not None:
            return _execute_plan_partitioned(
                plan, relation, weights, parallel, layout, share_key
            )
        parallel.note_fallback()
    # Filters never materialise: each FilterNode evaluates to a boolean
    # mask that ANDs into a single selection vector.  The selection is
    # consumed exactly once — Project materialises the surviving rows (one
    # copy, with dictionary encodings sliced along), while Aggregate hands
    # it straight to the grouped kernels, which slice the scan relation's
    # memoized group codes instead of re-encoding filtered columns.
    trace = current_trace()
    node_log: list | None = None
    if trace is not None and trace.explain:
        # EXPLAIN ANALYZE only: per-node surviving-row counts and timings
        # (the sampled hot path pays just the two None checks per node).
        node_log = trace.meta.setdefault("plan_nodes", [])
        node_log.append({"node": "Scan", "rows": relation.num_rows, "ms": 0.0})
    selection: np.ndarray | None = None
    for node in plan.nodes:
        node_started = perf_counter() if node_log is not None else 0.0
        if isinstance(node, FilterNode):
            mask = np.asarray(node.predicate.evaluate(relation), dtype=bool)
            selection = mask if selection is None else selection & mask
        elif isinstance(node, ProjectNode):
            if weights is not None:
                # A reweighted tuple with zero weight "does not exist".
                zero_alive = weights > 0.0
                selection = (
                    zero_alive if selection is None else selection & zero_alive
                )
                weights = None
            if selection is not None:
                relation = relation.filter(selection)
                selection = None
            relation = project_expressions(relation, node.exprs, node.aliases)
            if node.distinct:
                relation = distinct_op(relation)
        elif isinstance(node, AggregateNode):
            relation = grouped_aggregate(
                relation,
                node.group_keys,
                node.key_columns,
                node.specs,
                node.schema,
                weights,
                selection,
            )
            weights = None
            selection = None
        elif isinstance(node, SortNode):
            relation = relation.sort_by(list(node.columns), list(node.ascending))
        elif isinstance(node, LimitNode):
            relation = relation.head(node.count)
        else:  # pragma: no cover - exhaustive over PlanNode
            raise SqlCompileError(f"unknown plan node {type(node).__name__}")
        if node_log is not None:
            rows = (
                int(selection.sum()) if selection is not None else relation.num_rows
            )
            node_log.append(
                {
                    "node": node.describe(),
                    "rows": rows,
                    "ms": round((perf_counter() - node_started) * 1e3, 4),
                }
            )
    return relation


def execute_plan_composite(
    plan: LogicalPlan,
    relation: Relation,
    rep_ids: np.ndarray,
    repetitions: int,
    weights: np.ndarray,
) -> tuple[AggregateNode, CompositeAggregates]:
    """Run an aggregate ``plan`` once over a batched OPEN generation.

    ``relation`` stacks ``repetitions`` generated samples (``rep_ids``
    assigns each row to its repetition); filters evaluate over the whole
    batch into one selection vector, and the aggregate reduces composite
    ``(rep, group)`` codes in a single kernel pass — the query executes
    *once* instead of once per repetition.  Returns the plan's aggregate
    node plus the per-(repetition, group) results for
    :func:`~repro.engine.open_world.combine_composite_answers`; Sort/Limit
    nodes are intentionally not handled here — ordering is applied to the
    combined answer, and plans with LIMIT take the per-repetition path
    (a per-repetition LIMIT changes which groups each answer contains).
    """
    if relation.schema != plan.source_schema:
        raise SchemaError(
            f"plan compiled against {plan.source_schema!r} cannot run over "
            f"{relation.schema!r}"
        )
    if not plan.weighted:
        raise SchemaError("batched OPEN execution requires a weighted plan")
    selection: np.ndarray | None = None
    for node in plan.nodes:
        if isinstance(node, FilterNode):
            mask = np.asarray(node.predicate.evaluate(relation), dtype=bool)
            selection = mask if selection is None else selection & mask
        elif isinstance(node, AggregateNode):
            return node, grouped_aggregate_composite(
                relation,
                node.group_keys,
                node.specs,
                rep_ids,
                repetitions,
                weights,
                selection,
            )
        elif isinstance(node, (SortNode, LimitNode)):
            raise SchemaError(
                "composite execution saw a Sort/Limit node before the "
                "aggregate; this plan must use the per-repetition path"
            )
        else:
            raise SchemaError(
                "composite execution requires an aggregate plan, got "
                f"{type(node).__name__}"
            )
    raise SchemaError("composite execution requires an aggregate plan")


# --------------------------------------------------------------------- #
# Morsel-partitioned execution (multi-process scan parallelism)
# --------------------------------------------------------------------- #

#: Hard ceiling on the group-key cell domain a partitioned plan may use.
#: The partials allocate O(cells) per spec per morsel; a vocab cross-product
#: far beyond the row count signals a degenerate key combination where the
#: dense in-process kernels are the better plan anyway.
MAX_PARTITION_CELLS = 1 << 22


def partition_layout(
    plan: LogicalPlan, relation: Relation
) -> tuple[AggregateNode, tuple, tuple[int, ...], int] | None:
    """Can ``plan`` run as mergeable morsel partials over ``relation``?

    Decomposable shape: optional filters, one aggregate, optional sort /
    limit tail — and every GROUP BY key must carry a storage encoding so
    cell ids mean the same key values in every morsel (see
    :func:`~repro.relational.kernels.encoded_group_domain`).  Returns
    ``(aggregate, tail_nodes, domain_sizes, total_cells)`` or ``None``.
    """
    aggregate: AggregateNode | None = None
    tail: list = []
    for node in plan.nodes:
        if isinstance(node, FilterNode) and aggregate is None:
            continue
        if isinstance(node, AggregateNode) and aggregate is None:
            aggregate = node
        elif isinstance(node, (SortNode, LimitNode)) and aggregate is not None:
            tail.append(node)
        else:
            return None
    if aggregate is None:
        return None
    domain = encoded_group_domain(relation, aggregate.group_keys)
    if domain is None:
        return None
    sizes, total = domain
    if total > min(MAX_PARTITION_CELLS, max(1 << 16, 8 * relation.num_rows)):
        return None
    return aggregate, tuple(tail), sizes, total


def morsel_ranges(num_rows: int, morsel_rows: int) -> list[tuple[int, int]]:
    """The fixed morsel decomposition of ``num_rows`` (pure function)."""
    step = max(1, morsel_rows)
    return [(start, min(start + step, num_rows)) for start in range(0, num_rows, step)]


def execute_plan_morsel(
    plan: LogicalPlan,
    relation: Relation,
    start: int,
    stop: int,
    weights: np.ndarray | None,
    domain_sizes: tuple[int, ...],
    total_cells: int,
    row_offset: int | None = None,
) -> dict:
    """One morsel's plan fragment: filters + partial aggregation.

    The single fragment executor both the in-process morsel loop and the
    worker processes run — same code, same inputs, same partial out.
    ``row_offset`` is the morsel's global first-row index when ``relation``
    is already a window onto the full relation (worker-side windowed
    attach): representative row ids must stay global because the parent
    finalizes against the whole relation.  ``None`` means ``relation`` is
    the full relation and ``start`` is the global offset.
    """
    morsel = relation.slice_rows(start, stop)
    selection: np.ndarray | None = None
    aggregate: AggregateNode | None = None
    for node in plan.nodes:
        if isinstance(node, FilterNode):
            mask = np.asarray(node.predicate.evaluate(morsel), dtype=bool)
            selection = mask if selection is None else selection & mask
        elif isinstance(node, AggregateNode):
            aggregate = node
            break
    assert aggregate is not None  # guaranteed by partition_layout
    morsel_weights = None if weights is None else weights[start:stop]
    return grouped_aggregate_partial(
        morsel,
        aggregate.group_keys,
        aggregate.specs,
        domain_sizes,
        total_cells,
        morsel_weights,
        selection,
        start if row_offset is None else row_offset,
    )


def _execute_plan_partitioned(
    plan: LogicalPlan,
    relation: Relation,
    weights: np.ndarray | None,
    parallel,
    layout: tuple[AggregateNode, tuple, tuple[int, ...], int],
    share_key: tuple | None = None,
) -> Relation:
    """Morsel-partitioned execution: partition, map, merge, finalize, tail."""
    aggregate, tail, domain_sizes, total_cells = layout
    ranges = morsel_ranges(relation.num_rows, parallel.morsel_rows)
    partials = parallel.map_morsels(
        plan, relation, weights, ranges, domain_sizes, total_cells, share_key
    )
    merged = merge_grouped_partials(partials, aggregate.specs, weights is not None)
    result = finalize_grouped_partials(
        merged,
        relation,
        aggregate.group_keys,
        aggregate.key_columns,
        aggregate.specs,
        aggregate.schema,
        weights is not None,
    )
    for node in tail:
        if isinstance(node, SortNode):
            result = result.sort_by(list(node.columns), list(node.ascending))
        else:
            result = result.head(node.count)
    return result


# --------------------------------------------------------------------- #
# Cross-shard partial aggregation (fleet scatter/gather)
# --------------------------------------------------------------------- #

#: Shared denominator column partial AVG specs divide by after the merge:
#: COUNT(*) of the selected rows (their total weight when weighted) — the
#: exact denominator the one-pass AVG kernel uses.
PARTIAL_COUNT_COLUMN = "__partial_count"

_PARTIAL_MERGE_OPS = {"COUNT": "sum", "SUM": "sum", "MIN": "min", "MAX": "max"}


class PartialAggregateForm:
    """A decomposable aggregate plan split for shard-local partial execution.

    ``partial_aggregate`` replaces the plan's aggregate with shard-locally
    computable pieces (AVG becomes SUM + a shared COUNT denominator); the
    JSON-safe ``recipe`` tells the gatherer how to merge the shards'
    partial relations back into the original output — the same COUNT/SUM
    accumulate + MIN/MAX extremum + AVG-as-sum-over-count algebra the
    morsel partials use (:func:`merge_grouped_partials`), expressed at the
    relation level so it can cross the wire.
    """

    __slots__ = ("filters", "aggregate", "partial_aggregate", "recipe")

    def __init__(self, filters, aggregate, partial_aggregate, recipe):
        self.filters = filters
        self.aggregate = aggregate
        self.partial_aggregate = partial_aggregate
        self.recipe = recipe


def partial_aggregate_form(plan: LogicalPlan) -> PartialAggregateForm | None:
    """Split ``plan`` into shard-partial form, or ``None`` if not decomposable.

    Decomposable shape mirrors :func:`partition_layout` — optional filters,
    one aggregate, optional sort/limit tail — but without the encoded-key
    requirement: the gatherer merges whole relations (vocab union +
    searchsorted remap in :meth:`Relation.concat`), so group keys need no
    shared cell domain.  Sort/limit move into the recipe: shards must not
    apply them (a per-shard LIMIT changes which groups survive), the
    gatherer applies them after the merge.
    """
    filters: list[FilterNode] = []
    aggregate: AggregateNode | None = None
    tail: list = []
    for node in plan.nodes:
        if isinstance(node, FilterNode) and aggregate is None:
            filters.append(node)
        elif isinstance(node, AggregateNode) and aggregate is None:
            aggregate = node
        elif isinstance(node, (SortNode, LimitNode)) and aggregate is not None:
            tail.append(node)
        else:
            return None
    if aggregate is None:
        return None

    num_keys = len(aggregate.key_columns)
    key_fields = list(aggregate.schema.fields[:num_keys])
    partial_specs: list[AggregateSpec] = []
    partial_fields: list[Field] = list(key_fields)
    merge: list[dict] = []
    output: list[dict] = []
    needs_count = False
    empty_error: str | None = None
    count_only = True

    for field in key_fields:
        output.append({"kind": "key", "name": field.name})
    source, weighted = plan.source_schema, plan.weighted
    for spec in aggregate.specs:
        if spec.func != "COUNT":
            count_only = False
            if empty_error is None:
                empty_error = f"aggregate {spec.to_sql()} over zero rows"
        if spec.func == "AVG":
            assert spec.expr is not None
            sum_alias = f"__partial_sum_{spec.alias}"
            sum_spec = AggregateSpec("SUM", spec.expr, sum_alias)
            partial_specs.append(sum_spec)
            partial_fields.append(Field(sum_alias, sum_spec.output_dtype(source, weighted)))
            merge.append({"col": sum_alias, "op": "sum"})
            output.append(
                {
                    "kind": "avg",
                    "name": spec.alias,
                    "sum": sum_alias,
                    "count": PARTIAL_COUNT_COLUMN,
                }
            )
            needs_count = True
        else:
            partial_specs.append(spec)
            partial_fields.append(Field(spec.alias, spec.output_dtype(source, weighted)))
            merge.append({"col": spec.alias, "op": _PARTIAL_MERGE_OPS[spec.func]})
            output.append({"kind": "agg", "name": spec.alias})
    if needs_count:
        count_spec = AggregateSpec("COUNT", None, PARTIAL_COUNT_COLUMN)
        partial_specs.append(count_spec)
        partial_fields.append(
            Field(PARTIAL_COUNT_COLUMN, count_spec.output_dtype(source, weighted))
        )
        merge.append({"col": PARTIAL_COUNT_COLUMN, "op": "sum"})

    order_by: list[list] = []
    limit: int | None = None
    for node in tail:
        if isinstance(node, SortNode):
            order_by = [
                [column, bool(asc)] for column, asc in zip(node.columns, node.ascending)
            ]
        else:
            limit = node.count

    recipe = {
        "version": 1,
        "group_keys": [field.name for field in key_fields],
        "weighted": bool(weighted),
        "merge": merge,
        "output": output,
        "count_only": count_only,
        "empty_error": empty_error,
        "order_by": order_by,
        "limit": limit,
    }
    partial_aggregate = AggregateNode(
        group_keys=aggregate.group_keys,
        key_columns=aggregate.key_columns,
        specs=tuple(partial_specs),
        schema=Schema(partial_fields),
    )
    return PartialAggregateForm(tuple(filters), aggregate, partial_aggregate, recipe)


def execute_plan_partial(
    form: PartialAggregateForm,
    relation: Relation,
    weights: np.ndarray | None = None,
) -> Relation:
    """One shard's fragment of a scattered aggregate: filters + partials.

    Returns the shard's partial-aggregate relation (partial schema).  An
    ungrouped aggregate over zero selected rows returns an *empty* partial
    instead of raising or emitting a zero row: whether the global row set
    is empty is only known after the merge, so the gatherer reproduces the
    single-engine raise / COUNT-0 semantics from the merged total (see
    ``recipe["count_only"]`` / ``recipe["empty_error"]``).
    """
    selection: np.ndarray | None = None
    for node in form.filters:
        mask = np.asarray(node.predicate.evaluate(relation), dtype=bool)
        selection = mask if selection is None else selection & mask
    aggregate = form.partial_aggregate
    if not aggregate.group_keys:
        selected = int(selection.sum()) if selection is not None else relation.num_rows
        if selected == 0:
            return Relation.empty(aggregate.schema)
    return grouped_aggregate(
        relation,
        aggregate.group_keys,
        aggregate.key_columns,
        aggregate.specs,
        aggregate.schema,
        weights,
        selection,
    )


def composite_layout(
    plan: LogicalPlan, relation: Relation, planned_rows: int | None = None
) -> tuple[AggregateNode, tuple[int, ...], int] | None:
    """Can a batched OPEN plan shard across repetitions?

    Same key-encoding requirement as :func:`partition_layout`; the plan
    shape is already constrained by :func:`execute_plan_composite` (filters
    then aggregate; any sort tail is applied to the combined answer).

    ``planned_rows`` widens the row-scaled domain cap for callers that see
    only a slice of the eventual batch — the adaptive streaming path
    probes the layout on its first repetition chunk but accumulates over
    the full repetition budget, so the cap must reflect the planned total,
    not the chunk.
    """
    aggregate = next(
        (node for node in plan.nodes if isinstance(node, AggregateNode)), None
    )
    if aggregate is None:
        return None
    domain = encoded_group_domain(relation, aggregate.group_keys)
    if domain is None:
        return None
    sizes, total = domain
    scale_rows = max(relation.num_rows, planned_rows or 0, 1)
    if total > min(MAX_PARTITION_CELLS, max(1 << 16, 8 * scale_rows)):
        return None
    return aggregate, sizes, total


def execute_plan_open_shard(
    plan: LogicalPlan,
    relation: Relation,
    local_rep_ids: np.ndarray,
    rep_count: int,
    weight_value: float,
    domain_sizes: tuple[int, ...],
    domain_total: int,
    row_offset: int,
) -> dict:
    """One repetition-shard's fragment of a batched OPEN execution.

    ``relation`` is the shard's contiguous slice of the (view-filtered)
    generation batch; uniform weights are rebuilt from the scalar — the
    same ``np.full`` value the one-pass path uses, so no weight vector
    crosses the process boundary.
    """
    selection: np.ndarray | None = None
    aggregate: AggregateNode | None = None
    for node in plan.nodes:
        if isinstance(node, FilterNode):
            mask = np.asarray(node.predicate.evaluate(relation), dtype=bool)
            selection = mask if selection is None else selection & mask
        elif isinstance(node, AggregateNode):
            aggregate = node
            break
    assert aggregate is not None
    weights = np.full(relation.num_rows, weight_value)
    return composite_aggregate_partial(
        relation,
        aggregate.group_keys,
        aggregate.specs,
        local_rep_ids,
        rep_count,
        domain_sizes,
        domain_total,
        weights,
        selection,
        row_offset,
    )
