"""Logical query plans: the compiled, schema-bound form of a SELECT.

A :class:`LogicalPlan` is what :func:`repro.engine.compiler.compile_select`
produces once per ``(sql, input schema)`` and what every visibility path
executes — parse/bind/validate work happens at compile time, leaving plan
execution as pure vectorized data movement.

The node algebra is deliberately small (the Mosaic dialect is single-table):

    Scan -> [Filter]* -> (Project | Aggregate) -> [Sort] -> [Limit]

``Scan`` is implicit — the input relation handed to
:func:`repro.engine.compiler.execute_plan` — so the node tuple starts at the
optional filters.  A WHERE clause compiles to one :class:`FilterNode` per
top-level AND conjunct; at execution the filters only accumulate a
*selection vector* (a boolean mask over the scan), which is materialised
exactly once at Project or consumed directly by the Aggregate kernels —
no per-predicate row copies.  Plans are immutable and contain only bound
expressions, making them safe to share across repeated executions and
cache entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.relational.aggregates import AggregateSpec
from repro.relational.expressions import Expr
from repro.relational.schema import Schema


@dataclass(frozen=True, eq=False)
class FilterNode:
    """WHERE conjunct: AND this predicate's mask into the selection vector.

    Execution never materialises rows here — the mask combines with any
    previous filters' and rides to the next Project/Aggregate node.
    """

    predicate: Expr

    def describe(self) -> str:
        return f"Filter({self.predicate.to_sql()})"


@dataclass(frozen=True, eq=False)
class ProjectNode:
    """SELECT list of scalar expressions (with optional DISTINCT)."""

    exprs: tuple[Expr, ...]
    aliases: tuple[str, ...]
    schema: Schema
    distinct: bool = False

    def describe(self) -> str:
        head = "Distinct+Project" if self.distinct else "Project"
        return f"{head}({', '.join(self.aliases)})"


@dataclass(frozen=True, eq=False)
class AggregateNode:
    """GROUP BY + aggregate list, executed by the vectorized kernels.

    ``group_keys`` are the canonical grouping columns; ``key_columns`` the
    source column behind each leading output field (the SELECTed keys, in
    SELECT order); ``specs`` the bound aggregates for the remaining fields.
    """

    group_keys: tuple[str, ...]
    key_columns: tuple[str, ...]
    specs: tuple[AggregateSpec, ...]
    schema: Schema

    def describe(self) -> str:
        aggs = ", ".join(spec.to_sql() for spec in self.specs)
        if self.group_keys:
            return f"Aggregate[{', '.join(self.group_keys)}]({aggs})"
        return f"Aggregate({aggs})"


@dataclass(frozen=True, eq=False)
class SortNode:
    """ORDER BY over output columns (aggregate aliases included)."""

    columns: tuple[str, ...]
    ascending: tuple[bool, ...]

    def describe(self) -> str:
        keys = ", ".join(
            f"{column}{'' if asc else ' DESC'}"
            for column, asc in zip(self.columns, self.ascending)
        )
        return f"Sort({keys})"


@dataclass(frozen=True, eq=False)
class LimitNode:
    """LIMIT: keep the first ``count`` rows."""

    count: int

    def describe(self) -> str:
        return f"Limit({self.count})"


PlanNode = Union[FilterNode, ProjectNode, AggregateNode, SortNode, LimitNode]


@dataclass(frozen=True, eq=False)
class LogicalPlan:
    """A compiled SELECT: bound nodes plus the schemas on either end.

    ``source_schema`` is the schema the plan was compiled (bound) against;
    execution rejects relations with any other schema, which is what makes
    schema fingerprints a sound plan-cache key.  ``weighted`` records
    whether the plan was compiled for weighted execution (it changes
    aggregate output dtypes), and execution enforces it.
    """

    source_schema: Schema
    nodes: tuple[PlanNode, ...]
    output_schema: Schema
    weighted: bool = False

    def describe(self) -> str:
        steps = ["Scan", *(node.describe() for node in self.nodes)]
        if self.weighted:
            steps[0] = "Scan[weighted]"
        return " -> ".join(steps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogicalPlan({self.describe()})"
