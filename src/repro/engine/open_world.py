"""OPEN query evaluation: generate missing tuples (paper Sec. 4.2, 5).

"Any generative model can be plugged in and used to answer open queries as
long as it can be trained on sample data and marginals" — the engine
accepts any object with the :class:`OpenGenerator` protocol.  Three are
provided:

- :class:`MswgGenerator` — the paper's marginal-constrained sliced-
  Wasserstein generator (the default).
- :class:`BayesNetGenerator` — the Themis-style explicit model the paper
  contrasts against (Sec. 4.2's Bayesian-network discussion).
- :class:`IPFSynthesizer` — dense cube IPF over small categorical domains,
  which can place mass on never-sampled cells (the migrants example's
  "UK, AOL, 20" row).

Answer combination follows Sec. 5.3: generate ``repetitions`` samples,
uniformly reweight each to the population size, answer the query on each,
keep the groups appearing in *all* answers, and average the aggregates.
"""

from __future__ import annotations

import os
import threading
import weakref
from concurrent.futures import Executor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.bayesnet.model import BayesianNetworkModel
from repro.catalog.metadata import Marginal
from repro.engine.compiler import (
    compile_select,
    composite_layout,
    execute_plan,
    execute_plan_composite,
    execute_plan_open_shard,
)
from repro.engine.plan import AggregateNode, LogicalPlan
from repro.engine.planner import PlannedSource
from repro.errors import GenerativeModelError, VisibilityError
from repro.generative.mswg import MSWG, MswgConfig
from repro.observability.trace import current_trace
from repro.generative.streams import (
    REPETITION_COLUMN,
    repetition_chunks,
    repetition_streams,
    with_repetition_ids,
)
from repro.relational.dtypes import DType, object_array
from repro.relational.groupby import group_codes
from repro.relational.kernels import CompositeAggregates, WelfordMoments
from repro.relational.ops import union_all
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.reweight.cube import cube_ipf
from repro.sql.ast_nodes import SelectQuery
from repro.sql.binder import bind_expression


class OpenGenerator(Protocol):
    """What the OPEN path needs from a generative model.

    A generator whose ``generate`` only *reads* fitted state (drawing all
    randomness from the passed ``rng``) may set the class attribute
    ``thread_safe_generate = True``; the concurrent OPEN executor then
    calls it from several threads at once.  Without the marker, concurrent
    rounds serialize generation behind a per-generator lock (execution of
    the generated samples still overlaps).

    Generators may additionally provide
    ``generate_batch(n, repetitions, rng)`` returning all repetitions as
    one stacked ``R x n``-row relation tagged with a dense ``__rep__`` id
    column (see :mod:`repro.generative.streams`).  The contract: rows
    ``[r*n, (r+1)*n)`` must be bit-identical to
    ``generate(n, rng=stream_r)`` where ``stream_r`` is the ``r``-th
    stream of ``repetition_streams(rng, repetitions)``.  The engine then
    answers aggregate OPEN queries in a single batched pass instead of a
    per-repetition loop; generators without the method keep working
    through the loop.

    ``generate_batch_streams(n, streams)`` extends the contract to
    *chunked* generation: the engine pre-spawns the full stream list once
    and hands each chunk its ``streams[start:stop]`` slice, so a chunked
    emission draws values bit-identical to the monolithic batch over the
    same repetition indices (RNG stream indexing is per-repetition; see
    :mod:`repro.generative.streams`).  The adaptive streaming OPEN path
    requires it; TEXT columns must stay born-encoded against the fitted
    (stable) vocabulary so group cells mean the same keys in every chunk.
    """

    def fit(
        self,
        sample: Relation,
        marginals: list[Marginal],
        sample_weights: np.ndarray | None = None,
        categorical_columns: set[str] | None = None,
    ): ...

    def generate(self, n: int, rng: np.random.Generator | None = None) -> Relation: ...


# Per-generator locks serializing generate() for generators that are not
# marked thread_safe_generate (e.g. MSWG toggles its network between
# train/eval around the forward pass).  Keyed weakly so fitted generators
# evicted from the engine cache do not pin a lock forever.
_GENERATE_LOCKS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_GENERATE_LOCKS_GUARD = threading.Lock()
_FALLBACK_GENERATE_LOCK = threading.Lock()


def _generation_lock(generator) -> threading.Lock | None:
    """The lock guarding ``generator.generate`` — ``None`` if not needed."""
    if getattr(generator, "thread_safe_generate", False):
        return None
    with _GENERATE_LOCKS_GUARD:
        try:
            lock = _GENERATE_LOCKS.get(generator)
            if lock is None:
                lock = _GENERATE_LOCKS[generator] = threading.Lock()
            return lock
        except TypeError:  # unhashable/unweakrefable generator object
            return _FALLBACK_GENERATE_LOCK


class MswgGenerator:
    """The default OPEN generator: a thin adapter over :class:`MSWG`."""

    name = "mswg"

    def __init__(self, config: MswgConfig | None = None):
        self.model = MSWG(config)

    def fit(self, sample, marginals, sample_weights=None, categorical_columns=None):
        self.model.fit(
            sample,
            marginals,
            sample_weights=sample_weights,
            categorical_columns=categorical_columns,
        )
        return self

    def generate(self, n, rng=None):
        return self.model.generate(n, rng=rng)

    def generate_batch(self, n, repetitions, rng=None):
        return self.model.generate_batch(n, repetitions, rng=rng)

    def generate_batch_streams(self, n, streams):
        return self.model.generate_batch_streams(n, streams)


class BayesNetGenerator:
    """Explicit-model alternative (Sec. 4.2): Chow-Liu tree + CPTs."""

    name = "bayesnet"
    # Ancestral sampling only reads the fitted CPTs and draws from the rng
    # argument, so concurrent generate() calls are safe.
    thread_safe_generate = True

    def __init__(self, bins: int = 20, alpha: float = 0.1, seed: int = 0):
        self.model = BayesianNetworkModel(bins=bins, alpha=alpha, seed=seed)

    def fit(self, sample, marginals, sample_weights=None, categorical_columns=None):
        self.model.fit(
            sample,
            marginals,
            sample_weights=sample_weights,
            categorical_columns=categorical_columns,
        )
        return self

    def generate(self, n, rng=None):
        return self.model.generate(n, rng=rng)

    def generate_batch(self, n, repetitions, rng=None):
        return self.model.generate_batch(n, repetitions, rng=rng)

    def generate_batch_streams(self, n, streams):
        return self.model.generate_batch_streams(n, streams)

    def expected_count(self, constraints: dict[str, Callable[[object], bool]]) -> float:
        """COUNT by exact tree inference (enables the Sec. 4.2 fast path)."""
        return self.model.expected_count(constraints)


class IPFSynthesizer:
    """Full-domain synthesis for small (categorical) domains.

    Fits a dense joint table over the cross-product of attribute domains
    (sample values ∪ marginal values) with cube IPF, seeding each cell
    with its sample count plus ``prior`` so unseen cells can receive mass.
    Generation draws tuples from the fitted joint.
    """

    name = "ipf-synth"
    # generate() only reads the fitted joint and draws from the rng
    # argument, so concurrent calls are safe.
    thread_safe_generate = True

    def __init__(self, prior: float = 0.5, max_cells: int = 1_000_000):
        self.prior = prior
        self.max_cells = max_cells
        self._result = None
        self._schema = None
        self._flat_probabilities = None

    def fit(self, sample, marginals, sample_weights=None, categorical_columns=None):
        if not marginals:
            raise GenerativeModelError("IPFSynthesizer needs marginals")
        self._schema = sample.schema
        attributes = list(sample.column_names)

        marginal_values: dict[str, set] = {a: set() for a in attributes}
        for marginal in marginals:
            for axis, attribute in enumerate(marginal.attributes):
                if attribute not in marginal_values:
                    raise GenerativeModelError(
                        f"marginal attribute {attribute!r} missing from sample"
                    )
                marginal_values[attribute].update(key[axis] for key in marginal.keys())

        domains = []
        for attribute in attributes:
            values = {_native(v) for v in sample.column(attribute)}
            values |= {_native(v) for v in marginal_values[attribute]}
            domains.append(tuple(sorted(values, key=str)))

        total_cells = 1
        for domain in domains:
            total_cells *= len(domain)
        if total_cells > self.max_cells:
            raise GenerativeModelError(
                f"domain cross-product has {total_cells} cells, exceeding the "
                f"limit of {self.max_cells}; IPFSynthesizer is for small "
                "categorical domains (use M-SWG or the Bayesian network instead)"
            )

        shape = tuple(len(d) for d in domains)
        seed = np.full(shape, self.prior, dtype=np.float64)
        indexers = [{value: i for i, value in enumerate(domain)} for domain in domains]
        weights = (
            np.ones(sample.num_rows) if sample_weights is None else sample_weights
        )
        if sample.num_rows:
            # Vectorized cell accumulation: per-attribute dictionary codes
            # remap (distinct values only) into domain positions, the
            # position tuples ravel to flat cell ids, and one weighted
            # bincount scatters the sample mass into the cube.
            axis_codes = []
            for axis, attribute in enumerate(attributes):
                uniques, codes = sample.dictionary(attribute)
                remap = np.asarray(
                    [indexers[axis][_native(value)] for value in uniques],
                    dtype=np.int64,
                )
                axis_codes.append(remap[codes])
            flat = np.ravel_multi_index(tuple(axis_codes), shape)
            seed += np.bincount(
                flat, weights=weights, minlength=seed.size
            ).reshape(shape)

        self._result = cube_ipf(attributes, domains, marginals, seed_table=seed)
        self._flat_probabilities = None
        return self

    def _cell_probabilities(self) -> np.ndarray:
        """Flat cell probabilities of the fitted joint (computed once)."""
        if self._flat_probabilities is None:
            table = self._result.table
            self._flat_probabilities = (table / table.sum()).ravel()
        return self._flat_probabilities

    def _decode_cells(self, draws: np.ndarray) -> Relation:
        """Flat cell draws → tuples, born dictionary-encoded for TEXT."""
        unraveled = np.unravel_index(draws, self._result.table.shape)
        plain: dict = {}
        encoded: dict = {}
        for axis, attribute in enumerate(self._result.attributes):
            domain = self._result.domains[axis]
            if self._schema.dtype(attribute) is DType.TEXT and all(
                isinstance(v, str) for v in domain
            ):
                # The fitted domain is the sorted distinct value set — the
                # dictionary vocabulary — and the drawn cell indices are the
                # codes, so generated samples stay in code space end to end.
                encoded[attribute] = (domain, unraveled[axis])
            else:
                plain[attribute] = object_array(domain)[unraveled[axis]]
        return Relation.from_codes(self._schema, encoded, plain)

    def generate(self, n, rng=None):
        if self._result is None or self._schema is None:
            raise GenerativeModelError("generate() before fit()")
        rng = rng if rng is not None else np.random.default_rng(0)
        probabilities = self._cell_probabilities()
        draws = rng.choice(probabilities.size, size=n, p=probabilities)
        return self._decode_cells(draws)

    def generate_batch(self, n, repetitions, rng=None):
        """All repetitions in one pass: one ``rng.choice`` per repetition
        stream over the flat cell probabilities (the per-stream draws are
        bit-identical to serial ``generate`` calls), then a single batched
        decode of the stacked cell ids."""
        streams = repetition_streams(
            rng if rng is not None else np.random.default_rng(0), repetitions
        )
        return self.generate_batch_streams(n, streams)

    def generate_batch_streams(self, n, streams):
        """One chunk of repetitions, each drawn from its given stream
        (slice of a pre-spawned list, so chunking never changes draws)."""
        if self._result is None or self._schema is None:
            raise GenerativeModelError("generate() before fit()")
        if not streams:
            raise GenerativeModelError("need at least one repetition stream")
        probabilities = self._cell_probabilities()
        draws = np.concatenate(
            [
                stream.choice(probabilities.size, size=n, p=probabilities)
                for stream in streams
            ]
        )
        return with_repetition_ids(self._decode_cells(draws), len(streams))

    def expected_count(self, constraints: dict[str, Callable[[object], bool]]) -> float:
        """Exact COUNT from the fitted joint (no materialisation)."""
        if self._result is None:
            raise GenerativeModelError("expected_count() before fit()")
        mask = np.ones(self._result.table.shape, dtype=bool)
        for attribute, predicate in constraints.items():
            axis = self._result.attributes.index(attribute)
            axis_mask = np.asarray(
                [bool(predicate(v)) for v in self._result.domains[axis]]
            )
            shape = [1] * self._result.table.ndim
            shape[axis] = len(axis_mask)
            mask &= axis_mask.reshape(shape)
        return float(self._result.table[mask].sum())


@dataclass
class OpenQueryConfig:
    """How OPEN queries are answered.

    ``generator_factory`` builds a fresh unfitted generator; the engine
    caches fitted generators per (population, sample, factory).
    ``repetitions`` and the per-repetition row count implement Sec. 5.3's
    variance reduction ("we generate 10 samples with the same number of
    rows as the original sample ... return the groups appearing in all 10
    answers, averaging the aggregate value").

    ``batched`` (the default) answers aggregate queries in a single pass:
    the generator emits all repetitions as one ``R x n``-row batch and the
    query executes once over composite ``(rep, group)`` codes.  Disabling
    it — or using a generator without ``generate_batch``, or a query with
    LIMIT (whose per-repetition truncation the batch cannot reproduce) —
    falls back to the per-repetition loop.  Both paths produce
    bit-identical answers under a fixed session RNG.

    ``max_workers`` bounds the thread pool the *per-repetition loop* fans
    out across; ``None`` sizes it to ``min(repetitions, cpu_count)`` and
    ``1`` forces the serial loop.  Each repetition draws from its own
    spawned RNG stream, so batched, concurrent, and serial execution all
    produce bit-identical answers.

    ``tolerance > 0`` switches qualifying aggregate queries to *adaptive
    streaming* execution: the generator emits repetitions in chunks of
    ``chunk_repetitions``, per-group running mean/variance update after
    every chunk (vectorized Welford), and generation stops as soon as —
    after at least ``min_repetitions`` participating repetitions — every
    surviving group's CI half-width is within ``tolerance`` of its running
    mean for every aggregate, up to the ``max_repetitions`` cap (``None``
    means ``repetitions``).  ``tolerance=0`` (the default) keeps today's
    fixed-R batched path bit-identically.  ``report_ci=True`` opts result
    relations into per-group ``{alias}__std__``/``{alias}__ci__`` columns
    (sample std across participating repetitions and the CI half-width of
    the reported mean).
    """

    generator_factory: Callable[[], OpenGenerator] = field(
        default_factory=lambda: MswgGenerator
    )
    repetitions: int = 10
    rows_per_generation: int | None = None  # None -> sample size
    max_materialized_rows: int = 50_000
    categorical_columns: set[str] | None = None
    max_workers: int | None = None
    batched: bool = True
    tolerance: float = 0.0
    min_repetitions: int = 3
    max_repetitions: int | None = None  # None -> repetitions
    chunk_repetitions: int = 4
    report_ci: bool = False

    def resolved_workers(self) -> int:
        if self.max_workers is not None:
            return max(1, min(self.max_workers, self.repetitions))
        return max(1, min(self.repetitions, os.cpu_count() or 1))

    def resolved_max_repetitions(self) -> int:
        """The adaptive repetition cap (``repetitions`` unless overridden)."""
        cap = self.repetitions if self.max_repetitions is None else self.max_repetitions
        return max(1, int(cap))

    def resolved_min_repetitions(self) -> int:
        """The earliest participating-repetition count that may stop
        (never above the cap, never below 2 — variance needs two points)."""
        return min(max(2, int(self.min_repetitions)), self.resolved_max_repetitions())


def uses_batched_execution(
    generator: OpenGenerator, config: OpenQueryConfig, query: SelectQuery
) -> bool:
    """Will ``evaluate_open`` take the batched single-pass path?

    Exposed so the engine can avoid spinning up the repetition thread pool
    for queries that will never submit to it.  Queries that GROUP BY a
    column the SELECT list drops stay on the per-repetition path: their
    answers do not carry the key columns, so the reference combine
    intersects on what is visible — a semantics the composite pass (which
    sees the real group codes) would otherwise silently improve on.
    """
    if not (
        config.batched
        and hasattr(generator, "generate_batch")
        and bool(query.has_aggregates or query.group_by)
        and query.limit is None
    ):
        return False
    selected = {
        name.lower()
        for item in query.items
        if not item.is_aggregate
        for name in [getattr(item.expr, "name", None)]
        if name is not None
    }
    return all(key.lower() in selected for key in query.group_by)


def uses_adaptive_execution(
    generator: OpenGenerator, config: OpenQueryConfig, query: SelectQuery
) -> bool:
    """Will ``evaluate_open`` take the adaptive streaming path?

    Adaptive execution is the batched path plus chunked generation and a
    variance-based stop rule, so it needs everything
    :func:`uses_batched_execution` needs, a positive ``tolerance``, and a
    generator with ``generate_batch_streams``.
    """
    return (
        config.tolerance > 0.0
        and hasattr(generator, "generate_batch_streams")
        and uses_batched_execution(generator, config, query)
    )


def evaluate_open(
    query: SelectQuery,
    source: PlannedSource,
    generator: OpenGenerator,
    config: OpenQueryConfig,
    population_size: float,
    rng: np.random.Generator,
    plan: LogicalPlan | None = None,
    executor: Executor | None = None,
    parallel=None,
) -> tuple[Relation, list[str], dict]:
    """Answer ``query`` from generated population samples.

    Returns ``(relation, notes, meta)``; ``meta`` carries execution
    metadata — at least ``repetitions_used`` (how many repetitions were
    actually generated: the fixed ``R`` on the batched/loop paths, the
    adaptive stopping point on the streaming path, 0 for direct
    inference, 1 for the non-aggregate single materialisation).

    ``generator`` must already be fitted; ``population_size`` scales the
    uniform weights of each generated sample.  ``plan`` is the compiled form
    of ``query`` over the sample's schema (generated tuples share it) —
    supplied by :class:`~repro.core.engine.Engine` on plan-cache hits,
    compiled here otherwise.

    The ``repetitions`` generate → execute → combine rounds fan out across
    a thread pool (``config.max_workers``): ``executor`` when supplied (the
    engine's shared OPEN-repetition pool, drained by ``Engine.shutdown``),
    otherwise a per-call pool.  Each round draws from its own RNG stream
    spawned off a single ``rng`` draw, so the answer is a pure function of
    the session RNG state regardless of scheduling — serial
    (``max_workers=1``), per-call-pool, and shared-pool execution are
    bit-identical.

    ``parallel`` is the engine's
    :class:`~repro.core.workers.ParallelExecution` context.  The batched
    path shards its single composite pass across repetitions on the worker
    pool (see :meth:`run_open_shards`); the per-repetition loop and the
    non-aggregate path hand it to :func:`execute_plan` for ordinary morsel
    scans.  Every parallel variant is bit-identical to serial execution.
    """
    generator_name = getattr(generator, "name", type(generator).__name__)
    rows = config.rows_per_generation or source.sample.num_rows
    predicate = source.population.defining_predicate
    schema = source.sample.relation.schema
    weighted = bool(query.has_aggregates or query.group_by)
    if plan is None:
        plan = compile_select(query, schema, weighted=weighted)

    inferred = _try_count_inference(query, source, generator)
    if inferred is not None:
        return (
            inferred,
            [
                f"OPEN: COUNT answered by direct inference over {generator_name} "
                "(no tuples materialised, Sec. 4.2)"
            ],
            {"repetitions_used": 0},
        )

    notes = [f"OPEN: {config.repetitions} generated sample(s) from {generator_name}"]
    generation_lock = _generation_lock(generator)

    def generate_with(stream: np.random.Generator, count: int) -> Relation:
        if generation_lock is None:
            return generator.generate(count, rng=stream)
        with generation_lock:
            return generator.generate(count, rng=stream)

    if not (query.has_aggregates or query.group_by):
        rows = min(int(np.ceil(population_size)), config.max_materialized_rows)
        generated = generate_with(_repetition_streams(rng, 1)[0], rows)
        generated, _ = _apply_view(generated, predicate)
        notes.append(
            f"non-aggregate OPEN query: materialised one generated sample of "
            f"{rows} row(s)"
        )
        return (
            execute_plan(plan, generated, parallel=parallel),
            notes,
            {"repetitions_used": 1},
        )

    if uses_batched_execution(generator, config, query):
        if uses_adaptive_execution(generator, config, query):
            return _evaluate_open_adaptive(
                query,
                generator,
                config,
                population_size,
                rng,
                plan,
                predicate,
                rows,
                notes,
                generation_lock,
                parallel,
            )
        if config.tolerance > 0.0:
            notes.append(
                "OPEN: adaptive execution requested but the generator has no "
                "generate_batch_streams; running the fixed-R batched path"
            )
        return _evaluate_open_batched(
            query,
            generator,
            config,
            population_size,
            rng,
            plan,
            predicate,
            rows,
            notes,
            generation_lock,
            parallel,
        )

    streams = _repetition_streams(rng, config.repetitions)

    def one_round(index: int) -> Relation | None:
        generated = generate_with(streams[index], rows)
        generated, _ = _apply_view(generated, predicate)
        if generated.num_rows == 0:
            return None
        # Each generated tuple stands for population_size / rows population
        # tuples ("uniformly reweight the generated sample to match the size
        # of the population", Sec. 5.3); the view filter keeps that scale.
        weights = np.full(generated.num_rows, population_size / rows)
        return execute_plan(plan, generated, weights, parallel=parallel)

    workers = config.resolved_workers()
    if workers > 1 and executor is not None:
        # Waves of `workers` keep the configured fan-out bound on the
        # shared pool (which may be wider) without parking blocked tasks
        # in pool threads another query could be using.
        rounds = []
        for start in range(0, config.repetitions, workers):
            wave = range(start, min(start + workers, config.repetitions))
            rounds.extend(executor.map(one_round, wave))
        notes.append("OPEN: repetitions fanned out on the shared engine pool")
    elif workers > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            rounds = list(pool.map(one_round, range(config.repetitions)))
        notes.append(f"OPEN: repetitions fanned out over {workers} thread(s)")
    else:
        rounds = [one_round(index) for index in range(config.repetitions)]
    answers = [answer for answer in rounds if answer is not None]
    if not answers:
        raise VisibilityError(
            "every generated sample was empty after the population view "
            "predicate; the generator cannot reach this population"
        )
    if len(answers) < config.repetitions:
        notes.append(
            f"warning: {config.repetitions - len(answers)} generation(s) "
            "produced no tuples inside the population view"
        )

    key_columns = _key_columns(query, answers[0])
    combined = combine_open_answers(answers, key_columns)
    notes.append(
        f"kept groups present in all {len(answers)} answers, averaged aggregates"
    )
    return (
        _order_combined(combined, query),
        notes,
        {"repetitions_used": config.repetitions},
    )


def _evaluate_open_batched(
    query: SelectQuery,
    generator: OpenGenerator,
    config: OpenQueryConfig,
    population_size: float,
    rng: np.random.Generator,
    plan: LogicalPlan,
    predicate,
    rows: int,
    notes: list[str],
    generation_lock: threading.Lock | None,
    parallel=None,
) -> tuple[Relation, list[str], dict]:
    """The single-pass OPEN path: one batch, one execution, one combine.

    The generator emits all ``repetitions`` samples as one relation tagged
    with ``__rep__`` ids (each repetition drawn from its own spawned RNG
    stream, exactly as the serial loop draws them), the population view
    predicate filters the whole batch in one vectorized pass, the compiled
    plan executes once over composite ``(rep, group)`` codes, and
    :func:`combine_composite_answers` reduces the per-repetition answers
    without materialising ``R`` intermediate relations.  Bit-identical to
    the per-repetition loop under a fixed session RNG.
    """
    repetitions = config.repetitions
    if generation_lock is None:
        batch = generator.generate_batch(rows, repetitions, rng=rng)
    else:
        with generation_lock:
            batch = generator.generate_batch(rows, repetitions, rng=rng)
    rep_ids = np.asarray(batch.column(REPETITION_COLUMN), dtype=np.int64)
    data = batch.drop_column(REPETITION_COLUMN)
    return _finish_batched(
        query,
        config,
        data,
        rep_ids,
        repetitions,
        population_size,
        rows,
        plan,
        predicate,
        notes,
        parallel,
    )


def _finish_batched(
    query: SelectQuery,
    config: OpenQueryConfig,
    data: Relation,
    rep_ids: np.ndarray,
    repetitions: int,
    population_size: float,
    rows: int,
    plan: LogicalPlan,
    predicate,
    notes: list[str],
    parallel,
) -> tuple[Relation, list[str], dict]:
    """View-filter, composite-execute and combine one full ``R x n`` batch.

    Shared by the fixed-R batched path and the adaptive path's fallback
    (whose unioned chunk batch is row-identical to a monolithic one, so
    both entries produce bit-identical answers).
    """
    if predicate is not None and data.num_rows:
        bound = bind_expression(predicate, data.schema)
        mask = np.asarray(bound.evaluate(data), dtype=bool)
        data = data.filter(mask)
        rep_ids = rep_ids[mask]

    participating = np.bincount(rep_ids, minlength=repetitions) > 0
    answered = int(participating.sum())
    if answered == 0:
        raise VisibilityError(
            "every generated sample was empty after the population view "
            "predicate; the generator cannot reach this population"
        )
    if answered < repetitions:
        notes.append(
            f"warning: {repetitions - answered} generation(s) "
            "produced no tuples inside the population view"
        )

    # Each generated tuple stands for population_size / rows population
    # tuples ("uniformly reweight the generated sample to match the size
    # of the population", Sec. 5.3); the view filter keeps that scale.
    weight_value = population_size / rows
    # Large batches shard across the worker pool on repetition boundaries:
    # every (rep, group) composite cell lives wholly inside one shard, so
    # the stitched result is bit-identical to the one-pass execution below.
    sharded = (
        None
        if parallel is None
        else parallel.run_open_shards(plan, data, rep_ids, repetitions, weight_value)
    )
    if sharded is not None:
        aggregate_node, composite = sharded
        notes.append("OPEN: composite pass sharded across the worker pool")
    else:
        weights = np.full(data.num_rows, weight_value)
        aggregate_node, composite = execute_plan_composite(
            plan, data, rep_ids, repetitions, weights
        )
    combined = combine_composite_answers(
        data,
        aggregate_node,
        composite,
        participating,
        report_ci=config.report_ci,
    )
    notes.append(
        "OPEN: batched single-pass execution over composite (rep, group) codes"
    )
    notes.append(
        f"kept groups present in all {answered} answers, averaged aggregates"
    )
    return (
        _order_combined(combined, query),
        notes,
        {"repetitions_used": repetitions},
    )


#: z-score of the 95% normal confidence interval the adaptive stop rule
#: (and the opt-in ``__ci__`` columns) use.
CONFIDENCE_Z = 1.96

#: Relative-tolerance denominators floor here: a group whose running mean
#: is exactly zero would otherwise divide by zero.  The floor is tiny on
#: purpose — near-zero means demand near-zero spread, which is the
#: conservative reading (such groups keep generating to the cap).
_TOLERANCE_FLOOR = 1e-12


def _evaluate_open_adaptive(
    query: SelectQuery,
    generator: OpenGenerator,
    config: OpenQueryConfig,
    population_size: float,
    rng: np.random.Generator,
    plan: LogicalPlan,
    predicate,
    rows: int,
    notes: list[str],
    generation_lock: threading.Lock | None,
    parallel=None,
) -> tuple[Relation, list[str], dict]:
    """The adaptive streaming OPEN path: chunked generation, early stop.

    The full repetition-stream list spawns once (one draw on the session
    RNG, exactly as the fixed paths derive theirs), then repetitions are
    generated ``chunk_repetitions`` at a time.  Each chunk runs through
    the composite kernels in *vocab cross-product cell space* — the
    chunk-stable group identity morsel execution already relies on — and
    its per-(repetition, cell) partials merge into O(G) running state:
    present-in-all intersection, per-aggregate totals (accumulated
    repetition by repetition, the fixed combine's order), and vectorized
    Welford mean/variance.  After each chunk, once ``min_repetitions``
    participating repetitions have accumulated, generation stops as soon
    as every surviving group's CI half-width is within the relative
    ``tolerance`` of its running mean for every aggregate; otherwise the
    stream continues to the ``max_repetitions`` cap.  Chunks shard across
    the worker pool when it is available, and peak batch memory is capped
    at ``chunk_repetitions x n`` rows instead of ``R x n``.

    Queries whose GROUP BY keys lack a chunk-stable encoded domain
    (numeric keys, oversized vocab cross-products) fall back to the
    fixed-R batched path — generating the *remaining* repetitions from
    the same pre-spawned streams, so the fallback answer is bit-identical
    to the monolithic batch.
    """
    cap = config.resolved_max_repetitions()
    min_repetitions = config.resolved_min_repetitions()
    chunk = max(1, int(config.chunk_repetitions))
    streams = repetition_streams(rng, cap)
    weight_value = population_size / rows

    def generate_chunk(chunk_streams) -> Relation:
        if generation_lock is None:
            return generator.generate_batch_streams(rows, chunk_streams)
        with generation_lock:
            return generator.generate_batch_streams(rows, chunk_streams)

    aggregate_node: AggregateNode | None = None
    domain_sizes: tuple[int, ...] = ()
    domain_total = 0
    key_vocabs: list[np.ndarray] = []
    present_all: np.ndarray | None = None
    totals: list[np.ndarray] = []
    moments: list[WelfordMoments] = []
    answered = 0
    used = 0
    sharded_any = False
    trace = current_trace()
    chunk_log = (
        trace.meta.setdefault("open_chunks", []) if trace is not None else None
    )

    for start, stop in repetition_chunks(cap, chunk):
        chunk_reps = stop - start
        if trace is not None:
            with trace.span(
                "open.generate", rep_start=start, rep_stop=stop
            ) as span:
                batch = generate_chunk(streams[start:stop])
                span["rows"] = batch.num_rows
        else:
            batch = generate_chunk(streams[start:stop])
        local_ids = np.asarray(batch.column(REPETITION_COLUMN), dtype=np.int64)
        data = batch.drop_column(REPETITION_COLUMN)

        if aggregate_node is None:
            layout = composite_layout(plan, data, planned_rows=rows * cap)
            if layout is None:
                notes.append(
                    "OPEN: adaptive streaming needs chunk-stable group cells "
                    "(encoded GROUP BY keys, bounded domain); falling back "
                    "to the fixed-R batched path"
                )
                return _adaptive_layout_fallback(
                    query,
                    config,
                    population_size,
                    rows,
                    plan,
                    predicate,
                    notes,
                    parallel,
                    generate_chunk,
                    data,
                    local_ids,
                    streams,
                    stop,
                    cap,
                )
            aggregate_node, sizes, total = layout
            domain_sizes, domain_total = tuple(sizes), int(total)
            key_vocabs = [
                np.asarray(data.encoding(key)[0])
                for key in aggregate_node.group_keys
            ]
            present_all = np.ones(domain_total, dtype=bool)
            totals = [
                np.zeros(domain_total, dtype=np.float64)
                for _ in aggregate_node.specs
            ]
            moments = [WelfordMoments(domain_total) for _ in aggregate_node.specs]
        else:
            _check_vocab_stability(data, aggregate_node.group_keys, key_vocabs)

        if predicate is not None and data.num_rows:
            bound = bind_expression(predicate, data.schema)
            mask = np.asarray(bound.evaluate(data), dtype=bool)
            data = data.filter(mask)
            local_ids = local_ids[mask]

        participating = np.bincount(local_ids, minlength=chunk_reps) > 0
        sharded = (
            None
            if parallel is None
            else parallel.run_open_shards(
                plan,
                data,
                local_ids,
                chunk_reps,
                weight_value,
                layout=(aggregate_node, domain_sizes, domain_total),
            )
        )
        if sharded is not None:
            present_block = sharded[1].present
            value_blocks = sharded[1].values
            if not sharded_any:
                sharded_any = True
                notes.append("OPEN: adaptive chunks sharded across the worker pool")
        else:
            partial = execute_plan_open_shard(
                plan,
                data,
                local_ids,
                chunk_reps,
                weight_value,
                domain_sizes,
                domain_total,
                0,
            )
            present_block = partial["present"]
            value_blocks = partial["values"]

        used = stop
        rep_rows = np.flatnonzero(participating)
        if rep_rows.size:
            answered += int(rep_rows.size)
            present_all &= present_block[rep_rows].all(axis=0)
            for index, matrix in enumerate(value_blocks):
                # Accumulate repetition by repetition (ascending), the
                # fixed combine's order, so running to the cap reproduces
                # the monolithic batch's totals exactly.
                for repetition in rep_rows:
                    totals[index] += matrix[repetition]
                moments[index].update(matrix[rep_rows])

        if chunk_log is not None:
            # Per-chunk convergence telemetry: the worst (largest) relative
            # CI half-width across surviving groups and aggregates — what
            # the stopping rule compares against the tolerance.
            chunk_log.append(
                {
                    "rep_start": start,
                    "rep_stop": stop,
                    "answered": answered,
                    "max_rel_ci_half_width": _max_rel_halfwidth(
                        moments, present_all
                    ),
                }
            )

        if answered >= min_repetitions and _converged(
            moments, present_all, config.tolerance
        ):
            break

    if answered == 0:
        raise VisibilityError(
            "every generated sample was empty after the population view "
            "predicate; the generator cannot reach this population"
        )
    if used - answered:
        notes.append(
            f"warning: {used - answered} generation(s) "
            "produced no tuples inside the population view"
        )
    combined = _combine_adaptive(
        aggregate_node,
        domain_sizes,
        key_vocabs,
        present_all,
        totals,
        moments,
        answered,
        config.report_ci,
    )
    notes.append(
        f"OPEN: adaptive streaming execution over {used} of up to {cap} "
        f"repetition(s) in chunks of {chunk} (tolerance={config.tolerance:g})"
    )
    if used < cap:
        notes.append(
            "OPEN: stopped early — every group's CI half-width within the "
            f"relative tolerance after {answered} participating repetition(s)"
        )
    else:
        notes.append("OPEN: repetition cap reached before the tolerance target")
    notes.append(
        f"kept groups present in all {answered} answers, averaged aggregates"
    )
    meta = {
        "repetitions_used": used,
        "repetitions_cap": cap,
        "adaptive": True,
        "early_stop": used < cap,
        "peak_batch_rows": min(chunk, cap) * rows,
    }
    return _order_combined(combined, query), notes, meta


def _max_rel_halfwidth(
    moments: list[WelfordMoments], kept_mask: np.ndarray
) -> float | None:
    """The largest relative CI half-width across surviving groups, or
    ``None`` before any repetition participated (trace telemetry only)."""
    if not kept_mask.any():
        return None
    worst = 0.0
    for tracker in moments:
        if tracker.count == 0:
            return None
        half = tracker.ci_halfwidth(CONFIDENCE_Z)[kept_mask]
        means = tracker.mean[kept_mask]
        rel = half / np.maximum(np.abs(means), _TOLERANCE_FLOOR)
        if rel.size:
            worst = max(worst, float(rel.max()))
    return round(worst, 6)


def _converged(
    moments: list[WelfordMoments], kept_mask: np.ndarray, tolerance: float
) -> bool:
    """Does every aggregate meet the relative-tolerance target on every
    currently surviving group?"""
    if not kept_mask.any():
        return False
    for tracker in moments:
        half = tracker.ci_halfwidth(CONFIDENCE_Z)[kept_mask]
        means = tracker.mean[kept_mask]
        if not np.all(
            half <= tolerance * np.maximum(np.abs(means), _TOLERANCE_FLOOR)
        ):
            return False
    return True


def _check_vocab_stability(
    data: Relation, group_keys, key_vocabs: list[np.ndarray]
) -> None:
    """Every chunk must carry the same fitted vocabularies — cell ids are
    only comparable across chunks when the vocab never moves."""
    for key, vocab in zip(group_keys, key_vocabs):
        entry = data.encoding(key)
        if entry is None or not np.array_equal(np.asarray(entry[0]), vocab):
            raise GenerativeModelError(
                f"generator changed the vocabulary of GROUP BY key {key!r} "
                "between repetition chunks; adaptive streaming requires the "
                "stable fitted vocabulary the chunked-stream contract "
                "guarantees"
            )


def _combine_adaptive(
    aggregate_node: AggregateNode,
    domain_sizes: tuple[int, ...],
    key_vocabs: list[np.ndarray],
    present_all: np.ndarray,
    totals: list[np.ndarray],
    moments: list[WelfordMoments],
    answered: int,
    report_ci: bool,
) -> Relation:
    """The adaptive sibling of :func:`combine_composite_answers`.

    Surviving cells are those present in every participating repetition;
    key values decode straight from the captured vocabularies (chunk rows
    are long gone — this is what caps peak memory), and ascending cell id
    is ascending key order, the same key-sorted output the fixed paths
    produce.
    """
    out_schema = _combined_schema(aggregate_node, report_ci)
    kept_cells = np.flatnonzero(present_all)
    if kept_cells.size == 0:
        return Relation.empty(out_schema)

    columns: list[np.ndarray] = []
    if aggregate_node.group_keys:
        cell_indices = np.unravel_index(kept_cells, domain_sizes)
        for vocab, codes in zip(key_vocabs, cell_indices):
            columns.append(vocab[codes])
    spread_columns: list[np.ndarray] = []
    for index, spec_totals in enumerate(totals):
        columns.append(spec_totals[present_all] / answered)
        if report_ci:
            spread_columns.append(moments[index].std()[present_all])
            spread_columns.append(
                moments[index].ci_halfwidth(CONFIDENCE_Z)[present_all]
            )
    columns.extend(spread_columns)
    return Relation.from_groups(out_schema, columns)


def _adaptive_layout_fallback(
    query: SelectQuery,
    config: OpenQueryConfig,
    population_size: float,
    rows: int,
    plan: LogicalPlan,
    predicate,
    notes: list[str],
    parallel,
    generate_chunk,
    first_data: Relation,
    first_ids: np.ndarray,
    streams,
    generated: int,
    cap: int,
) -> tuple[Relation, list[str], dict]:
    """Finish an adaptive stream whose layout is not chunk-mergeable.

    The remaining repetitions generate from the same pre-spawned streams
    and union with the first chunk — row-for-row the monolithic batch —
    then the shared fixed-R tail runs, so the answer is bit-identical to
    the non-adaptive batched path.
    """
    if generated < cap:
        rest = generate_chunk(streams[generated:cap])
        rest_ids = (
            np.asarray(rest.column(REPETITION_COLUMN), dtype=np.int64) + generated
        )
        data = first_data.concat(rest.drop_column(REPETITION_COLUMN))
        rep_ids = np.concatenate([first_ids, rest_ids])
    else:
        data, rep_ids = first_data, first_ids
    return _finish_batched(
        query,
        config,
        data,
        rep_ids,
        cap,
        population_size,
        rows,
        plan,
        predicate,
        notes,
        parallel,
    )


def _order_combined(combined: Relation, query: SelectQuery) -> Relation:
    """ORDER BY / LIMIT over the combined OPEN answer (shared tail)."""
    if query.order_by:
        names = [key.column for key in query.order_by]
        combined = combined.sort_by(
            [n for n in names if n in combined.schema],
            [key.ascending for key in query.order_by if key.column in combined.schema],
        )
    if query.limit is not None:
        combined = combined.head(query.limit)
    return combined


def combine_composite_answers(
    relation: Relation,
    aggregate_node: AggregateNode,
    composite: CompositeAggregates,
    participating: np.ndarray,
    report_ci: bool = False,
) -> Relation:
    """Group-intersection + aggregate averaging, straight from composite codes.

    The batched sibling of :func:`combine_open_answers`: per-repetition
    answers never materialise.  A group survives iff it is present in
    every *participating* repetition (repetitions whose generation was
    empty inside the population view do not count, matching the serial
    loop's dropped ``None`` answers); its aggregates average the per-cell
    values repetition by repetition — the same accumulation order the
    union-then-bincount combine performs, so results are bit-identical.
    Group ids are key-sorted (dictionary order over the whole batch), so
    output rows land in the same key-sorted order as the serial combine.

    ``report_ci`` appends per-aggregate ``{alias}__std__``/``{alias}__ci__``
    columns (sample std of the per-repetition values across participating
    repetitions, and the CI half-width of the reported mean).  The default
    ``False`` leaves the schema — and every byte of the answer — unchanged.
    """
    out_schema = _combined_schema(aggregate_node, report_ci)

    repetition_rows = composite.present[participating]
    kept = (
        repetition_rows.all(axis=0)
        if repetition_rows.shape[0]
        else np.zeros(composite.num_groups, dtype=bool)
    )
    if composite.num_groups == 0 or not kept.any():
        return Relation.empty(out_schema)

    representatives = composite.first_indices[kept]
    columns = [
        relation.column(name)[representatives]
        for name in aggregate_node.key_columns
    ]
    answered = int(participating.sum())
    spread_columns: list[np.ndarray] = []
    for matrix in composite.values:
        totals = np.zeros(int(kept.sum()), dtype=np.float64)
        # Accumulate repetition by repetition (ascending), mirroring the
        # serial combine's bincount over rep-major union rows.
        for repetition in np.flatnonzero(participating):
            totals = totals + matrix[repetition][kept]
        means = totals / answered
        columns.append(means)
        if report_ci:
            spread_columns.extend(_spread_columns(matrix, participating, kept, means))
    columns.extend(spread_columns)
    return Relation.from_groups(out_schema, columns)


def _combined_schema(aggregate_node: AggregateNode, report_ci: bool) -> Schema:
    """Key fields + FLOAT aggregate fields (+ std/ci pairs when opted in)."""
    key_fields = list(aggregate_node.schema.fields[: len(aggregate_node.key_columns)])
    value_fields = [Field(spec.alias, DType.FLOAT) for spec in aggregate_node.specs]
    fields = key_fields + value_fields
    if report_ci:
        for spec in aggregate_node.specs:
            fields.append(Field(f"{spec.alias}__std__", DType.FLOAT))
            fields.append(Field(f"{spec.alias}__ci__", DType.FLOAT))
    return Schema(fields)


def _spread_columns(
    matrix: np.ndarray,
    participating: np.ndarray,
    kept: np.ndarray,
    means: np.ndarray,
) -> list[np.ndarray]:
    """``[std, ci]`` of one aggregate's per-repetition values per kept group."""
    answered = int(participating.sum())
    if answered > 1:
        deviations = matrix[participating][:, kept] - means
        std = np.sqrt((deviations * deviations).sum(axis=0) / (answered - 1))
    else:
        std = np.full(means.shape, np.inf)
    return [std, CONFIDENCE_Z * std / np.sqrt(answered)]


def _try_count_inference(
    query: SelectQuery,
    source: PlannedSource,
    generator: OpenGenerator,
) -> Relation | None:
    """The Sec. 4.2 fast path: pure COUNT via ``generator.expected_count``.

    Returns ``None`` whenever the query or predicate shape doesn't qualify
    (the caller falls back to materialisation).  Constraints on binned
    attributes are evaluated at bin representatives — a controlled
    approximation, like any histogram-based estimator.
    """
    from repro.engine.inference import is_pure_count, predicate_constraints

    expected_count = getattr(generator, "expected_count", None)
    if expected_count is None or not is_pure_count(query):
        return None

    schema = source.sample.relation.schema
    bound_where = (
        None if query.where is None else bind_expression(query.where, schema)
    )
    constraints = predicate_constraints(bound_where)
    if constraints is None:
        return None

    view = source.population.defining_predicate
    if view is not None:
        view_constraints = predicate_constraints(bind_expression(view, schema))
        if view_constraints is None:
            return None
        for column, term in view_constraints.items():
            previous = constraints.get(column)
            constraints[column] = (
                term
                if previous is None
                else (lambda v, a=previous, b=term: a(v) and b(v))
            )

    try:
        count = float(expected_count(constraints))
    except Exception:
        return None  # e.g. constraint on an attribute the model lacks
    alias = query.items[0].alias or query.items[0].default_alias()
    from repro.relational.dtypes import DType
    from repro.relational.schema import Field, Schema

    return Relation.from_columns(
        Schema([Field(alias, DType.FLOAT)]), {alias: [count]}
    )


def _repetition_streams(
    rng: np.random.Generator, count: int
) -> list[np.random.Generator]:
    """``count`` independent RNG streams from a single draw on ``rng``.

    Delegates to :func:`repro.generative.streams.repetition_streams` — the
    same derivation ``generate_batch`` implementations use, which is what
    makes the batched path, the concurrent executor, and the serial loop
    all bit-identical.
    """
    return repetition_streams(rng, count)


def combine_open_answers(answers: list[Relation], key_columns: list[str]) -> Relation:
    """Group-intersection + aggregate averaging across repeated answers.

    Vectorized over dictionary codes: the answers (each with distinct key
    combinations, as GROUP BY outputs are) are unioned into one relation,
    :func:`~repro.relational.groupby.group_codes` assigns each key
    combination a dense id, and a key survives iff its id occurs in every
    answer — i.e. its occurrence count equals ``len(answers)``.  Aggregates
    average with one ``np.bincount`` per value column; no per-row Python
    dict is built.  Because each answer's key columns carry dictionary
    encodings (grouped-aggregate output is born encoded) and ``union_all``
    merges vocabularies code-side, the whole combine stays in code space.
    Output rows are in key-sorted order (``np.unique`` semantics per
    column).
    """
    first = answers[0]
    value_columns = [c for c in first.column_names if c not in key_columns]
    repetitions = len(answers)

    schema_fields = [first.schema.field(c) for c in key_columns]
    schema_fields += [Field(c, DType.FLOAT) for c in value_columns]
    out_schema = Schema(schema_fields)

    combined = union_all(answers)
    if combined.num_rows == 0:
        return Relation.empty(out_schema)

    codes, num_groups, first_indices = group_codes(combined, list(key_columns))
    counts = np.bincount(codes, minlength=num_groups)
    kept = counts == repetitions

    columns = [combined.column(c)[first_indices][kept] for c in key_columns]
    for c in value_columns:
        values = np.asarray(combined.column(c), dtype=np.float64)
        sums = np.bincount(codes, weights=values, minlength=num_groups)
        columns.append(sums[kept] / repetitions)
    return Relation.from_groups(out_schema, columns)


def _key_columns(query: SelectQuery, answer: Relation) -> list[str]:
    aggregate_aliases = {
        (item.alias or item.default_alias())
        for item in query.items
        if item.is_aggregate
    }
    return [c for c in answer.column_names if c not in aggregate_aliases]


def _apply_view(relation: Relation, predicate) -> tuple[Relation, float]:
    if predicate is None or relation.num_rows == 0:
        return relation, 1.0
    bound = bind_expression(predicate, relation.schema)
    mask = np.asarray(bound.evaluate(relation), dtype=bool)
    kept = relation.filter(mask)
    return kept, float(np.mean(mask))


def _native(value):
    if isinstance(value, np.generic):
        return value.item()
    return value
