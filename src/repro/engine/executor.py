"""SELECT evaluation over a concrete (optionally weighted) relation.

This is the bottom of every visibility path: once CLOSED/SEMI-OPEN/OPEN
processing has produced tuples and weights, the executor applies the
user's WHERE / GROUP BY / aggregates / ORDER BY / LIMIT with the paper's
weighted-aggregate rewrite.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SqlCompileError
from repro.relational.aggregates import AggregateSpec, compute_aggregate
from repro.relational.dtypes import DType
from repro.relational.expressions import ColumnRef, Expr, validate_expression
from repro.relational.groupby import group_rows
from repro.relational.ops import distinct as distinct_op
from repro.relational.ops import project_expressions
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.sql.ast_nodes import SelectItem, SelectQuery
from repro.sql.binder import bind_expression, require_column


def execute_select(
    query: SelectQuery,
    relation: Relation,
    weights: np.ndarray | None = None,
) -> Relation:
    """Evaluate ``query`` over ``relation``.

    ``weights`` triggers weighted-aggregate semantics; zero-weight rows are
    excluded from non-aggregate output (a reweighted tuple with zero weight
    "does not exist").
    """
    schema = relation.schema
    if query.where is not None:
        predicate = bind_expression(query.where, schema)
        if validate_expression(predicate, schema) is not DType.BOOL:
            raise SqlCompileError("WHERE predicate must be boolean")
        mask = np.asarray(predicate.evaluate(relation), dtype=bool)
        relation = relation.filter(mask)
        if weights is not None:
            weights = weights[mask]

    if query.has_aggregates or query.group_by:
        result = _execute_aggregate(query, relation, weights)
    else:
        result = _execute_projection(query, relation, weights)

    if query.order_by:
        names = [require_column(key.column, result.schema) for key in query.order_by]
        result = result.sort_by(names, [key.ascending for key in query.order_by])
    if query.limit is not None:
        result = result.head(query.limit)
    return result


def _execute_projection(
    query: SelectQuery, relation: Relation, weights: np.ndarray | None
) -> Relation:
    if weights is not None:
        alive = weights > 0.0
        relation = relation.filter(alive)

    exprs: list[Expr] = []
    aliases: list[str] = []
    for item in query.items:
        if item.is_star:
            for name in relation.column_names:
                exprs.append(ColumnRef(name))
                aliases.append(name)
            continue
        assert item.expr is not None
        exprs.append(bind_expression(item.expr, relation.schema))
        aliases.append(item.alias or item.default_alias())
    result = project_expressions(relation, exprs, aliases)
    if query.distinct:
        result = distinct_op(result)
    return result


def _execute_aggregate(
    query: SelectQuery, relation: Relation, weights: np.ndarray | None
) -> Relation:
    schema = relation.schema
    group_keys = [require_column(name, schema) for name in query.group_by]

    key_items: list[tuple[SelectItem, str]] = []
    agg_items: list[tuple[SelectItem, AggregateSpec]] = []
    for item in query.items:
        if item.is_star:
            raise SqlCompileError("SELECT * cannot be combined with aggregates")
        if item.is_aggregate:
            assert item.func is not None
            expr = (
                None if item.expr is None else bind_expression(item.expr, schema)
            )
            spec = AggregateSpec(item.func, expr, item.alias or item.default_alias())
            agg_items.append((item, spec))
        else:
            column = _as_group_column(item, group_keys, schema)
            key_items.append((item, column))

    weighted = weights is not None
    fields = []
    for item, column in key_items:
        fields.append(Field(item.alias or column, schema.dtype(column)))
    for item, spec in agg_items:
        fields.append(Field(spec.alias, spec.output_dtype(schema, weighted)))
    out_schema = Schema(fields)

    rows: list[tuple] = []
    for key, indices in group_rows(relation, group_keys):
        group_weights = None if weights is None else weights[indices]
        if group_weights is not None and not np.any(group_weights > 0):
            continue  # a reweighted-away group does not exist
        group_relation = relation.take(indices)
        row: list = []
        key_by_column = dict(zip(group_keys, key))
        for item, column in key_items:
            row.append(key_by_column[column])
        for item, spec in agg_items:
            row.append(compute_aggregate(spec, group_relation, group_weights))
        rows.append(tuple(row))

    return Relation.from_rows(out_schema, rows)


def _as_group_column(item: SelectItem, group_keys: list[str], schema) -> str:
    if not isinstance(item.expr, (ColumnRef,)) and not hasattr(item.expr, "name"):
        raise SqlCompileError(
            "non-aggregate SELECT items in an aggregate query must be "
            f"plain GROUP BY columns, got {item.default_alias()!r}"
        )
    name = item.expr.name  # ColumnRef or Identifier both expose .name
    column = require_column(name, schema)
    if column not in group_keys:
        raise SqlCompileError(
            f"column {column!r} appears in SELECT but not in GROUP BY"
        )
    return column
