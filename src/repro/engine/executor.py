"""SELECT evaluation over a concrete (optionally weighted) relation.

This is the bottom of every visibility path: once CLOSED/SEMI-OPEN/OPEN
processing has produced tuples and weights, the executor applies the
user's WHERE / GROUP BY / aggregates / ORDER BY / LIMIT with the paper's
weighted-aggregate rewrite.

Since the compiled-pipeline refactor this module is a thin convenience
wrapper: :func:`execute_select` compiles a fresh
:class:`~repro.engine.plan.LogicalPlan` and runs it (WHERE clauses execute
as selection vectors over the scan — see ``repro.engine.plan``).  Callers that execute
the same SQL repeatedly (:class:`~repro.core.database.MosaicDB`) compile
once via :func:`~repro.engine.compiler.compile_select`, cache the plan, and
call :func:`~repro.engine.compiler.execute_plan` directly.
"""

from __future__ import annotations

import numpy as np

from repro.engine.compiler import compile_select, execute_plan
from repro.relational.relation import Relation
from repro.sql.ast_nodes import SelectQuery

__all__ = ["execute_select", "compile_select", "execute_plan"]


def execute_select(
    query: SelectQuery,
    relation: Relation,
    weights: np.ndarray | None = None,
    *,
    parallel=None,
) -> Relation:
    """Evaluate ``query`` over ``relation``.

    ``weights`` triggers weighted-aggregate semantics; zero-weight rows are
    excluded from non-aggregate output (a reweighted tuple with zero weight
    "does not exist").  ``parallel`` optionally supplies a
    :class:`~repro.core.workers.ParallelExecution` context for morsel-driven
    multi-process scans over large relations.
    """
    plan = compile_select(query, relation.schema, weighted=weights is not None)
    return execute_plan(plan, relation, weights, parallel=parallel)
