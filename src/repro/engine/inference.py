"""OPEN COUNT queries by direct inference (paper Sec. 4.2).

"If we model the probability distribution as a Bayesian network, we can
answer COUNT(*) queries using direct inference over the network" — no
tuple materialisation, no generation variance.  Generators that expose
``expected_count(constraints)`` (the Bayesian network and the IPF
synthesizer) get this fast path for queries of the shape::

    SELECT OPEN COUNT(*) FROM <population> [WHERE <conjunctive predicate>]

The WHERE clause must decompose into per-attribute constraints (a
conjunction of single-column comparisons / IN / BETWEEN / LIKE); anything richer
falls back to the materialisation path.
"""

from __future__ import annotations

from typing import Callable

from repro.relational.expressions import ColumnRef, Expr, Literal
from repro.relational.predicates import (
    And,
    Between,
    Comparison,
    InList,
    Like,
    TruePredicate,
)
from repro.sql.ast_nodes import SelectQuery

_COMPARATORS: dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def is_pure_count(query: SelectQuery) -> bool:
    """``SELECT COUNT(*) ...`` with no grouping, ordering, or companions."""
    return (
        len(query.items) == 1
        and query.items[0].is_aggregate
        and query.items[0].func == "COUNT"
        and query.items[0].expr is None
        and not query.group_by
        and not query.order_by
        and not query.distinct
    )


def predicate_constraints(
    predicate: Expr | None,
) -> dict[str, Callable[[object], bool]] | None:
    """Decompose a bound predicate into per-attribute value predicates.

    Returns ``None`` when the predicate is not a conjunction of
    single-column terms (the caller then falls back to materialisation).
    Multiple terms on the same column AND together.
    """
    terms: list[tuple[str, Callable[[object], bool]]] = []
    if predicate is not None and not _collect(predicate, terms):
        return None

    combined: dict[str, Callable[[object], bool]] = {}
    for column, term in terms:
        previous = combined.get(column)
        if previous is None:
            combined[column] = term
        else:
            combined[column] = _conjoin(previous, term)
    return combined


def _conjoin(
    first: Callable[[object], bool], second: Callable[[object], bool]
) -> Callable[[object], bool]:
    return lambda value: first(value) and second(value)


def _collect(expr: Expr, out: list[tuple[str, Callable[[object], bool]]]) -> bool:
    if isinstance(expr, TruePredicate):
        return True
    if isinstance(expr, And):
        return _collect(expr.left, out) and _collect(expr.right, out)
    if isinstance(expr, Comparison):
        term = _comparison_term(expr)
        if term is None:
            return False
        out.append(term)
        return True
    if isinstance(expr, InList):
        if not isinstance(expr.operand, ColumnRef):
            return False
        values = {_comparable(v) for v in expr.values}
        negated = expr.negated
        out.append(
            (
                expr.operand.name,
                lambda v: (_comparable(v) in values) != negated,
            )
        )
        return True
    if isinstance(expr, Like):
        if not isinstance(expr.operand, ColumnRef):
            return False
        matches = expr.matches
        negated = expr.negated
        out.append(
            (expr.operand.name, lambda v: matches(v) != negated)
        )
        return True
    if isinstance(expr, Between):
        if not (
            isinstance(expr.operand, ColumnRef)
            and isinstance(expr.low, Literal)
            and isinstance(expr.high, Literal)
        ):
            return False
        low, high = expr.low.value, expr.high.value
        negated = expr.negated
        out.append(
            (expr.operand.name, lambda v: (low <= v <= high) != negated)
        )
        return True
    return False


def _comparison_term(
    expr: Comparison,
) -> tuple[str, Callable[[object], bool]] | None:
    if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
        column, literal, op = expr.left.name, expr.right.value, expr.op
    elif isinstance(expr.right, ColumnRef) and isinstance(expr.left, Literal):
        column, literal = expr.right.name, expr.left.value
        op = _flip(expr.op)
    else:
        return None
    compare = _COMPARATORS[op]
    literal = _comparable(literal)
    return column, lambda value: compare(_comparable(value), literal)


def _flip(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}[op]


def _comparable(value: object) -> object:
    """Numeric-vs-string safety: compare numbers as floats, rest as str."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    return str(value)
