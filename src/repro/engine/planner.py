"""Sample selection for population queries.

Paper Sec. 4, assumption 2: "When a population query gets issued, the
query engine receives a single, optimal sample to use (this can be relaxed
by unioning samples over shared attributes)."  The planner implements both:
pick the largest applicable sample (default), or union all compatible
samples (the Sec. 7 'Multiple Samples' extension) and let reweighting
re-balance the combined tuples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.catalog.catalog import Catalog
from repro.catalog.population import PopulationRelation
from repro.catalog.sample import SampleRelation
from repro.errors import VisibilityError
from repro.relational.ops import union_all


@dataclass(frozen=True)
class PlannedSource:
    """The tuples a population query will be answered from.

    ``sample`` is the primary (or synthetic union) sample; ``weights`` are
    its current stored weights, aligned with ``sample.relation``.
    """

    sample: SampleRelation
    population: PopulationRelation
    combined: bool = False

    def cache_identity(self) -> tuple[int, int] | None:
        """Stable key for per-source artifact caches (reweights, generators).

        ``None`` for synthetic sample unions: they are rebuilt per query, so
        caching under their (ephemeral) uid would never hit and a name-based
        key could alias distinct constituents.
        """
        if self.combined:
            return None
        return (self.population.uid, self.sample.uid)

    def version_stamp(self, catalog: Catalog) -> tuple:
        """Versions of everything a reweight/generator fit depends on.

        Covers the sample's data+weights, the query population's metadata,
        and the global population's identity+metadata (both IPF fallback and
        declared-mechanism weights consult GP marginals).  Any mutation of
        these bumps a component, so a cached artifact stored under an older
        stamp is detected as stale on lookup — mutations elsewhere in the
        catalog leave the stamp (and thus the cached artifact) intact.
        """
        gp = catalog.global_population
        return (
            self.sample.version,
            self.population.metadata_version,
            None if gp is None else (gp.uid, gp.metadata_version),
        )


def choose_sample(
    catalog: Catalog,
    population: PopulationRelation,
    combine_samples: bool = False,
) -> PlannedSource:
    """Pick the sample(s) backing a query over ``population``.

    Candidate samples are those declared over the population itself, or
    over its global population (samples are defined against the GP;
    a derived population is a view the engine applies as a predicate).
    """
    candidates = list(catalog.samples_of(population.name))
    if not candidates and population.source_population is not None:
        candidates = list(catalog.samples_of(population.source_population))
    if not candidates and not population.is_global:
        # A derived population may also be backed by GP samples when the
        # population itself has none.
        gp = catalog.global_population
        if gp is not None:
            candidates = list(catalog.samples_of(gp.name))
    if not candidates:
        raise VisibilityError(
            f"no sample is available to answer queries over population "
            f"{population.name!r}"
        )

    if not combine_samples or len(candidates) == 1:
        best = max(candidates, key=lambda s: s.num_rows)
        return PlannedSource(sample=best, population=population)

    compatible = [s for s in candidates if s.relation.schema == candidates[0].relation.schema]
    union_relation = union_all([s.relation for s in compatible])
    union_weights = np.concatenate([s.weights for s in compatible])
    union_sample = SampleRelation(
        name="+".join(s.name for s in compatible),
        relation=union_relation,
        population=population.name,
        initial_weights=union_weights,
    )
    return PlannedSource(sample=union_sample, population=population, combined=True)
