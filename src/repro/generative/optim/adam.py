"""Adam optimiser (Kingma & Ba 2015) with PyTorch-default hyperparameters.

The paper trains M-SWG with "Pytorch's Adam optimizer with the default
settings": lr 1e-3 (they override to the same 1e-3), β₁ = 0.9, β₂ = 0.999,
ε = 1e-8.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.generative.nn.module import Parameter


class Adam:
    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        self.parameters = list(parameters)
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for i, parameter in enumerate(self.parameters):
            grad = parameter.grad
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad * grad
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            parameter.value -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()
