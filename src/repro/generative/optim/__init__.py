"""Optimisers and LR schedulers for the numpy NN substrate."""

from repro.generative.optim.adam import Adam
from repro.generative.optim.schedulers import ReduceLROnPlateau

__all__ = ["Adam", "ReduceLROnPlateau"]
