"""Learning-rate schedules.

The paper: "an initial learning rate of 0.001 that decreases by a factor
of 10 if a plateau is reached during training" — i.e. PyTorch's
ReduceLROnPlateau.
"""

from __future__ import annotations

from repro.generative.optim.adam import Adam


class ReduceLROnPlateau:
    """Divide the LR by ``1/factor`` when the metric stops improving.

    ``patience`` epochs without an improvement of at least
    ``threshold`` (relative) trigger a decay; ``min_lr`` floors the rate.
    """

    def __init__(
        self,
        optimizer: Adam,
        factor: float = 0.1,
        patience: int = 5,
        threshold: float = 1e-4,
        min_lr: float = 1e-7,
    ):
        if not 0.0 < factor < 1.0:
            raise ValueError(f"factor must be in (0, 1), got {factor}")
        self.optimizer = optimizer
        self.factor = factor
        self.patience = patience
        self.threshold = threshold
        self.min_lr = min_lr
        self._best = float("inf")
        self._stale_epochs = 0
        self.num_decays = 0

    def step(self, metric: float) -> bool:
        """Record an epoch metric; returns True when the LR was decayed."""
        if metric < self._best * (1.0 - self.threshold):
            self._best = metric
            self._stale_epochs = 0
            return False
        self._stale_epochs += 1
        if self._stale_epochs <= self.patience:
            return False
        self._stale_epochs = 0
        new_rate = max(self.optimizer.learning_rate * self.factor, self.min_lr)
        if new_rate < self.optimizer.learning_rate:
            self.optimizer.learning_rate = new_rate
            self.num_decays += 1
            return True
        return False
