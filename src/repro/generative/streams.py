"""Per-repetition RNG streams and repetition-id tagging for batched OPEN.

The OPEN path answers a query from ``repetitions`` independent generated
samples (paper Sec. 5.3).  Whether those samples are produced one at a
time (the serial reference loop) or as one batched ``R x n``-row relation
(the fast path), every repetition must draw from the *same* RNG stream so
the two executions are bit-identical:

- :func:`repetition_streams` derives ``count`` independent generators from
  a single draw on the session RNG.  One ``integers`` draw seeds a root
  :class:`~numpy.random.SeedSequence` whose spawned children drive the
  generation rounds, so a round's output depends only on the session RNG
  state at query start and its own index — never on scheduling or on
  whether the rounds were batched.
- :func:`with_repetition_ids` appends the dense ``__rep__`` id column a
  batched generation carries (row ``i`` belongs to repetition ``i // n``),
  which the engine later composes with group codes into composite
  ``(rep, group)`` keys.
- :func:`repetition_chunks` decomposes a repetition budget into the
  contiguous ``[start, stop)`` ranges the adaptive streaming path
  generates one chunk at a time.

The chunked-stream contract: :class:`~numpy.random.SeedSequence` children
depend only on their spawn index, so ``repetition_streams(rng, cap)``
yields the *same* stream ``r`` regardless of ``cap`` — and a chunked
generation that consumes ``streams[start:stop]`` per chunk draws values
bit-identical to one monolithic batch (or the serial loop) over the same
repetitions.  Chunking never changes a drawn value; it only changes how
many repetitions are materialised at once.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GenerativeModelError
from repro.relational.dtypes import DType
from repro.relational.relation import Relation

#: Name of the dense repetition-id column a batched generation carries.
REPETITION_COLUMN = "__rep__"


def repetition_streams(
    rng: np.random.Generator, count: int
) -> list[np.random.Generator]:
    """``count`` independent RNG streams from a single draw on ``rng``."""
    root = np.random.SeedSequence(int(rng.integers(np.iinfo(np.int64).max)))
    return [np.random.default_rng(child) for child in root.spawn(count)]


def repetition_chunks(count: int, chunk: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` repetition ranges of at most ``chunk``.

    The adaptive OPEN path walks these ranges in order, generating
    ``streams[start:stop]`` per round; the final range may be shorter.
    """
    if count <= 0:
        raise GenerativeModelError(f"need a positive repetition count, got {count}")
    step = max(1, chunk)
    return [(start, min(start + step, count)) for start in range(0, count, step)]


def with_repetition_ids(relation: Relation, repetitions: int) -> Relation:
    """Tag a stacked ``R x n``-row generation with its ``__rep__`` column.

    The relation must hold the repetitions contiguously in order: rows
    ``[r*n, (r+1)*n)`` are repetition ``r``.  The id column is appended
    without touching the existing columns (or their dictionary encodings).
    """
    if repetitions <= 0:
        raise GenerativeModelError(
            f"need a positive repetition count, got {repetitions}"
        )
    total = relation.num_rows
    if total % repetitions != 0:
        raise GenerativeModelError(
            f"batch of {total} row(s) is not divisible into {repetitions} "
            "equal repetitions"
        )
    per_repetition = total // repetitions
    ids = np.repeat(np.arange(repetitions, dtype=np.int64), per_repetition)
    return relation.with_column(REPETITION_COLUMN, DType.INT, ids)
