"""Per-repetition RNG streams and repetition-id tagging for batched OPEN.

The OPEN path answers a query from ``repetitions`` independent generated
samples (paper Sec. 5.3).  Whether those samples are produced one at a
time (the serial reference loop) or as one batched ``R x n``-row relation
(the fast path), every repetition must draw from the *same* RNG stream so
the two executions are bit-identical:

- :func:`repetition_streams` derives ``count`` independent generators from
  a single draw on the session RNG.  One ``integers`` draw seeds a root
  :class:`~numpy.random.SeedSequence` whose spawned children drive the
  generation rounds, so a round's output depends only on the session RNG
  state at query start and its own index — never on scheduling or on
  whether the rounds were batched.
- :func:`with_repetition_ids` appends the dense ``__rep__`` id column a
  batched generation carries (row ``i`` belongs to repetition ``i // n``),
  which the engine later composes with group codes into composite
  ``(rep, group)`` keys.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GenerativeModelError
from repro.relational.dtypes import DType
from repro.relational.relation import Relation

#: Name of the dense repetition-id column a batched generation carries.
REPETITION_COLUMN = "__rep__"


def repetition_streams(
    rng: np.random.Generator, count: int
) -> list[np.random.Generator]:
    """``count`` independent RNG streams from a single draw on ``rng``."""
    root = np.random.SeedSequence(int(rng.integers(np.iinfo(np.int64).max)))
    return [np.random.default_rng(child) for child in root.spawn(count)]


def with_repetition_ids(relation: Relation, repetitions: int) -> Relation:
    """Tag a stacked ``R x n``-row generation with its ``__rep__`` column.

    The relation must hold the repetitions contiguously in order: rows
    ``[r*n, (r+1)*n)`` are repetition ``r``.  The id column is appended
    without touching the existing columns (or their dictionary encodings).
    """
    if repetitions <= 0:
        raise GenerativeModelError(
            f"need a positive repetition count, got {repetitions}"
        )
    total = relation.num_rows
    if total % repetitions != 0:
        raise GenerativeModelError(
            f"batch of {total} row(s) is not divisible into {repetitions} "
            "equal repetitions"
        )
    per_repetition = total // repetitions
    ids = np.repeat(np.arange(repetitions, dtype=np.int64), per_repetition)
    return relation.with_column(REPETITION_COLUMN, DType.INT, ids)
