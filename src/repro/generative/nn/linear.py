"""Fully connected layer with manual backprop."""

from __future__ import annotations

import numpy as np

from repro.generative.nn.init import he_normal, xavier_uniform
from repro.generative.nn.module import Module, Parameter


class Linear(Module):
    """``y = x @ W + b``.

    ``init="he"`` (default) suits ReLU hidden layers; ``init="xavier"``
    suits the output layer.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        init: str = "he",
        name: str = "",
    ):
        if init == "he":
            weight = he_normal(rng, in_features, out_features)
        elif init == "xavier":
            weight = xavier_uniform(rng, in_features, out_features)
        else:
            raise ValueError(f"unknown init scheme: {init!r}")
        self.weight = Parameter(weight, name=f"{name}.weight")
        self.bias = Parameter(np.zeros(out_features), name=f"{name}.bias")
        self._cache: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x = self._require_cache(self._cache, "input")
        self._cache = None
        self.weight.grad += x.T @ grad_output
        self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value.T

    def parameters(self):
        yield self.weight
        yield self.bias
