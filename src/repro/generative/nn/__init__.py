"""Minimal neural-network substrate with manual backprop (numpy only)."""

from repro.generative.nn.activations import BlockSoftmax, ReLU
from repro.generative.nn.batchnorm import BatchNorm1d
from repro.generative.nn.linear import Linear
from repro.generative.nn.module import Module, Parameter
from repro.generative.nn.sequential import Sequential

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "ReLU",
    "BlockSoftmax",
    "BatchNorm1d",
    "Sequential",
]
