"""Sequential container."""

from __future__ import annotations

import numpy as np

from repro.generative.nn.module import Module


class Sequential(Module):
    """Chain layers; backward runs in reverse."""

    def __init__(self, *layers: Module):
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def parameters(self):
        for layer in self.layers:
            yield from layer.parameters()

    def train(self) -> "Sequential":
        super().train()
        for layer in self.layers:
            layer.train()
        return self

    def eval(self) -> "Sequential":
        super().eval()
        for layer in self.layers:
            layer.eval()
        return self
