"""Batch normalisation with manual backprop.

The paper's generator applies "batch normalization after each layer"
(Sec. 5.3, synthetic experiment).  Training mode normalises by batch
statistics and maintains exponential running averages for inference mode.
"""

from __future__ import annotations

import numpy as np

from repro.generative.nn.module import Module, Parameter


class BatchNorm1d(Module):
    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5, name: str = ""):
        self.gamma = Parameter(np.ones(num_features), name=f"{name}.gamma")
        self.beta = Parameter(np.zeros(num_features), name=f"{name}.beta")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self.momentum = momentum
        self.eps = eps
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std)
        return self.gamma.value * x_hat + self.beta.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x_hat, inv_std = self._require_cache(self._cache, "statistics")
        self._cache = None
        self.gamma.grad += (grad_output * x_hat).sum(axis=0)
        self.beta.grad += grad_output.sum(axis=0)
        grad_x_hat = grad_output * self.gamma.value
        if not self.training:
            return grad_x_hat * inv_std
        n = grad_output.shape[0]
        return (
            inv_std
            / n
            * (
                n * grad_x_hat
                - grad_x_hat.sum(axis=0)
                - x_hat * (grad_x_hat * x_hat).sum(axis=0)
            )
        )

    def parameters(self):
        yield self.gamma
        yield self.beta
