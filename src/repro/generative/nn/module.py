"""Module and Parameter: the building blocks of the numpy NN substrate.

The contract mirrors a minimal PyTorch:

- ``forward(x)`` computes the output and caches whatever ``backward`` needs.
- ``backward(grad_output)`` consumes the cache, accumulates parameter
  gradients into ``Parameter.grad``, and returns the gradient with respect
  to the input.
- ``parameters()`` yields every trainable :class:`Parameter`.

Caching means a module instance is not reentrant: one ``forward`` must be
matched by at most one ``backward`` before the next ``forward``.  The
training loop in :mod:`repro.generative.training` respects this.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import GenerativeModelError


class Parameter:
    """A trainable tensor with its accumulated gradient."""

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = ""):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    def __repr__(self) -> str:
        return f"Parameter({self.name or 'unnamed'}, shape={self.value.shape})"


class Module:
    """Base class for layers."""

    training: bool = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> Iterator[Parameter]:
        return iter(())

    def train(self) -> "Module":
        """Switch to training mode (affects BatchNorm statistics)."""
        self.training = True
        return self

    def eval(self) -> "Module":
        """Switch to inference mode."""
        self.training = False
        return self

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def _require_cache(self, cache, what: str):
        if cache is None:
            raise GenerativeModelError(
                f"{type(self).__name__}.backward called without a matching "
                f"forward ({what} cache missing)"
            )
        return cache
