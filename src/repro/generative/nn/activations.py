"""Activation layers: ReLU and per-block softmax."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GenerativeModelError
from repro.generative.nn.module import Module


class ReLU(Module):
    """Elementwise ``max(x, 0)``."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0.0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        mask = self._require_cache(self._mask, "mask")
        self._mask = None
        return grad_output * mask


class BlockSoftmax(Module):
    """Softmax over selected column blocks, identity elsewhere.

    The M-SWG output head (paper Sec. 5.3): *"We add a softmax layer for
    the categorical variable ... During training, we leave the softmax
    output continuous and only force the output to be binary for data
    generation."*  Each block is a ``(start, stop)`` column range holding
    one one-hot-encoded categorical attribute.
    """

    def __init__(self, blocks: Sequence[tuple[int, int]]):
        cleaned = []
        for start, stop in blocks:
            if stop <= start:
                raise GenerativeModelError(f"empty softmax block ({start}, {stop})")
            cleaned.append((int(start), int(stop)))
        for (_, prev_stop), (next_start, _) in zip(cleaned, cleaned[1:]):
            if next_start < prev_stop:
                raise GenerativeModelError("softmax blocks must not overlap")
        self.blocks = tuple(cleaned)
        self._cache: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x.copy()
        for start, stop in self.blocks:
            block = x[:, start:stop]
            shifted = block - block.max(axis=1, keepdims=True)
            exp = np.exp(shifted)
            out[:, start:stop] = exp / exp.sum(axis=1, keepdims=True)
        self._cache = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        y = self._require_cache(self._cache, "output")
        self._cache = None
        grad_input = grad_output.copy()
        for start, stop in self.blocks:
            g = grad_output[:, start:stop]
            s = y[:, start:stop]
            inner = (g * s).sum(axis=1, keepdims=True)
            grad_input[:, start:stop] = s * (g - inner)
        return grad_input

    def harden(self, x: np.ndarray) -> np.ndarray:
        """Force each softmax block to an exact one-hot (for generation)."""
        out = x.copy()
        for start, stop in self.blocks:
            block = x[:, start:stop]
            hard = np.zeros_like(block)
            hard[np.arange(block.shape[0]), block.argmax(axis=1)] = 1.0
            out[:, start:stop] = hard
        return out
