"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np


def he_normal(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He (Kaiming) normal initialisation — the right scale for ReLU nets."""
    scale = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, scale, size=(fan_in, fan_out))


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot uniform initialisation — for linear / softmax output layers."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))
