"""Encoding relations as matrices for generator training.

Paper Sec. 5.3: *"For M-SWG training, we one-hot encode the categorical
variables and scale all attributes to be between 0 and 1."*  Table 1's
"M-SWG Dim" column is exactly the per-attribute encoded width this module
produces (carrier → 14, each numeric attribute → 1).

The encoder must know category values and numeric ranges that appear in
the *marginals* as well as the sample — the whole point of OPEN queries is
generating values the sample lacks (e.g. AOL emails), so the encoding is
fit over both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.catalog.metadata import Marginal
from repro.errors import EncodingError
from repro.relational.dtypes import DType, object_array
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@dataclass(frozen=True)
class ColumnEncoding:
    """How one relation column maps into matrix columns.

    ``kind`` is ``"numeric"`` (one min-max-scaled dimension) or
    ``"categorical"`` (one-hot block).  ``start``/``stop`` delimit the
    matrix columns.  For categoricals ``categories`` lists the block's
    values in column order; for numerics ``low``/``high`` give the scaling
    range.
    """

    name: str
    dtype: DType
    kind: str
    start: int
    stop: int
    categories: tuple = ()
    low: float = 0.0
    high: float = 1.0

    @property
    def width(self) -> int:
        return self.stop - self.start


class TableEncoder:
    """Bidirectional relation ⇄ matrix encoding (one-hot + min-max)."""

    def __init__(self, columns: list[ColumnEncoding], schema: Schema):
        self.columns = columns
        self.schema = schema
        self._by_name = {c.name: c for c in columns}

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #

    @classmethod
    def fit(
        cls,
        relation: Relation,
        marginals: list[Marginal] | None = None,
        categorical_columns: set[str] | None = None,
    ) -> "TableEncoder":
        """Learn the encoding from a relation plus marginal metadata.

        TEXT/BOOL columns are categorical; numeric columns are min-max
        scaled.  ``categorical_columns`` forces named numeric columns to be
        treated as categoricals (small integer domains).  Category sets and
        numeric ranges are extended with every value the marginals mention.
        """
        marginals = marginals or []
        categorical_columns = categorical_columns or set()

        extra_values: dict[str, list] = {}
        for marginal in marginals:
            for axis, attribute in enumerate(marginal.attributes):
                bucket = extra_values.setdefault(attribute, [])
                bucket.extend(key[axis] for key in marginal.keys())

        encodings: list[ColumnEncoding] = []
        offset = 0
        for field in relation.schema:
            values = relation.column(field.name)
            extras = extra_values.get(field.name, [])
            if field.dtype in (DType.TEXT, DType.BOOL) or field.name in categorical_columns:
                categories = sorted(
                    {_native(v) for v in values} | {_native(v) for v in extras},
                    key=str,
                )
                if not categories:
                    raise EncodingError(f"column {field.name!r} has no values to encode")
                encoding = ColumnEncoding(
                    name=field.name,
                    dtype=field.dtype,
                    kind="categorical",
                    start=offset,
                    stop=offset + len(categories),
                    categories=tuple(categories),
                )
            else:
                numeric = np.asarray(values, dtype=np.float64)
                lows = [float(np.min(numeric))] if numeric.size else []
                highs = [float(np.max(numeric))] if numeric.size else []
                lows.extend(float(v) for v in extras)
                highs.extend(float(v) for v in extras)
                if not lows:
                    raise EncodingError(f"column {field.name!r} has no values to encode")
                low, high = min(lows), max(highs)
                if high == low:
                    high = low + 1.0
                encoding = ColumnEncoding(
                    name=field.name,
                    dtype=field.dtype,
                    kind="numeric",
                    start=offset,
                    stop=offset + 1,
                    low=low,
                    high=high,
                )
            encodings.append(encoding)
            offset = encoding.stop
        return cls(encodings, relation.schema)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def width(self) -> int:
        """Total encoded dimensionality (sum of Table 1's "M-SWG Dim")."""
        return self.columns[-1].stop if self.columns else 0

    def column(self, name: str) -> ColumnEncoding:
        encoding = self._by_name.get(name)
        if encoding is None:
            raise EncodingError(f"no encoding for column {name!r}")
        return encoding

    def block_indices(self, names: list[str]) -> np.ndarray:
        """Matrix column indices of the named attributes, concatenated."""
        pieces = [np.arange(self.column(n).start, self.column(n).stop) for n in names]
        return np.concatenate(pieces)

    def softmax_blocks(self) -> list[tuple[int, int]]:
        """(start, stop) of every categorical block (for BlockSoftmax)."""
        return [(c.start, c.stop) for c in self.columns if c.kind == "categorical"]

    # ------------------------------------------------------------------ #
    # Transform
    # ------------------------------------------------------------------ #

    def transform(self, relation: Relation) -> np.ndarray:
        """Encode a relation into an ``(n, width)`` float matrix.

        One-hot blocks are scattered from the relation's memoized
        dictionary codes: only the (small) distinct value set is looked up
        in Python, and the per-row writes are one fancy-indexed assignment
        per block instead of a per-row loop.
        """
        n = relation.num_rows
        matrix = np.zeros((n, self.width), dtype=np.float64)
        rows = np.arange(n)
        for encoding in self.columns:
            if encoding.kind == "numeric":
                numeric = np.asarray(relation.column(encoding.name), dtype=np.float64)
                matrix[:, encoding.start] = (numeric - encoding.low) / (
                    encoding.high - encoding.low
                )
            else:
                index = {category: i for i, category in enumerate(encoding.categories)}
                uniques, codes = relation.dictionary(encoding.name)
                positions = np.empty(len(uniques), dtype=np.int64)
                for position, value in enumerate(uniques):
                    block_position = index.get(_native(value))
                    if block_position is None:
                        raise EncodingError(
                            f"value {_native(value)!r} of column "
                            f"{encoding.name!r} was not seen when the encoder "
                            "was fit"
                        )
                    positions[position] = block_position
                matrix[rows, encoding.start + positions[codes]] = 1.0
        return matrix

    def encode_value(self, name: str, value) -> np.ndarray:
        """Encode one attribute value into its block's coordinates."""
        encoding = self.column(name)
        if encoding.kind == "numeric":
            return np.asarray(
                [(float(value) - encoding.low) / (encoding.high - encoding.low)]
            )
        block = np.zeros(encoding.width)
        try:
            block[encoding.categories.index(_native(value))] = 1.0
        except ValueError:
            raise EncodingError(
                f"value {value!r} of column {name!r} was not seen when the "
                "encoder was fit"
            ) from None
        return block

    def inverse_transform(self, matrix: np.ndarray) -> Relation:
        """Decode a matrix back into a relation.

        Categorical blocks decode by argmax (the paper's "force the output
        to be binary for data generation"); numeric columns unscale, clip
        to the fitted range, and round when the original dtype was INT.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.width:
            raise EncodingError(
                f"matrix shape {matrix.shape} does not match encoder width {self.width}"
            )
        plain: dict[str, object] = {}
        encoded: dict[str, tuple] = {}
        for encoding in self.columns:
            block = matrix[:, encoding.start : encoding.stop]
            if encoding.kind == "numeric":
                raw = np.clip(block[:, 0], 0.0, 1.0)
                values = encoding.low + raw * (encoding.high - encoding.low)
                if encoding.dtype is DType.INT:
                    values = np.round(values)
                plain[encoding.name] = values
            else:
                picks = block.argmax(axis=1)
                if encoding.dtype is DType.TEXT and all(
                    isinstance(c, str) for c in encoding.categories
                ):
                    # The fitted category tuple is sorted and distinct —
                    # exactly a dictionary vocabulary — and argmax picks
                    # *are* the codes.  Hand both to the relation directly
                    # so every generated sample is born dictionary-encoded
                    # (no re-factorization per repetition).
                    encoded[encoding.name] = (encoding.categories, picks)
                else:
                    plain[encoding.name] = object_array(encoding.categories)[picks]
        return Relation.from_codes(self.schema, encoded, plain)


def _native(value):
    if isinstance(value, np.generic):
        return value.item()
    return value
