"""The marginal-constrained sliced-Wasserstein generator (paper Sec. 5).

``MSWG`` learns to generate population-like tuples from (a) a biased
sample and (b) 1-/2-dimensional population marginals, with no
discriminator network:

- each 1-D marginal over a width-1 (numeric) attribute contributes an
  exact quantile-matching Wasserstein term;
- each marginal touching a one-hot block (categorical attribute, or any
  2-D marginal) contributes a sliced-Wasserstein term over random unit
  projections of the block's encoded coordinates;
- a λ-weighted nearest-sample L2 penalty keeps generated points on the
  sample's manifold (Sample Coverage assumption);
- attributes no marginal covers get 1-D marginals *from the sample* added
  (Sec. 5.2: the model otherwise could not learn even the sample
  distribution of those attributes).

Usage::

    config = MswgConfig(hidden_layers=3, hidden_units=100, latent_dim=2,
                        lambda_coverage=0.04, batch_size=500, epochs=40)
    model = MSWG(config)
    model.fit(sample_relation, marginals)
    generated = model.generate(10_000)
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.catalog.metadata import Marginal
from repro.errors import GenerativeModelError
from repro.generative.encoding import TableEncoder
from repro.generative.losses.coverage import CoveragePenalty
from repro.generative.losses.sliced import SlicedMarginalLoss, random_unit_projections
from repro.generative.losses.wasserstein import QuantileMatchingLoss
from repro.generative.nn.activations import BlockSoftmax, ReLU
from repro.generative.nn.batchnorm import BatchNorm1d
from repro.generative.nn.linear import Linear
from repro.generative.nn.sequential import Sequential
from repro.generative.streams import repetition_streams, with_repetition_ids
from repro.generative.training import LossTerm, TrainingHistory, train_generator
from repro.relational.relation import Relation


@dataclass(frozen=True)
class MswgConfig:
    """Hyperparameters (paper defaults in comments).

    ``latent_dim=None`` sets ℓ to the encoded input width — the paper's
    flights choice ("the latent dimension ℓ being the same as the input
    dimensionality"); the synthetic spiral uses ℓ=2.
    """

    hidden_layers: int = 3          # spiral: 3, flights: 5
    hidden_units: int = 100         # spiral: 100, flights: 50
    latent_dim: int | None = 2      # spiral: 2, flights: None (input width)
    lambda_coverage: float = 0.04   # spiral: 0.04, flights: 1e-7
    num_projections: int = 100      # flights: 1000
    batch_size: int = 500
    epochs: int = 40                # flights: 80
    learning_rate: float = 1e-3
    batch_norm: bool = True
    lr_factor: float = 0.1
    lr_patience: int = 5
    power: int = 2                  # training surrogate: W2²-style matching
    coverage_squared: bool = True
    steps_per_epoch: int | None = None  # default: ceil(sample rows / batch)
    seed: int = 0

    def with_seed(self, seed: int) -> "MswgConfig":
        return replace(self, seed=seed)


def _single_column_term(loss: QuantileMatchingLoss):
    """Adapt a 1-D quantile loss to the (n, 1) block interface."""

    def compute(block: np.ndarray) -> tuple[float, np.ndarray]:
        value, grad = loss.loss_and_grad(block[:, 0])
        return value, grad[:, None]

    return compute


class MSWG:
    """Marginal-constrained sliced-Wasserstein generator."""

    def __init__(self, config: MswgConfig | None = None):
        self.config = config or MswgConfig()
        self.encoder: TableEncoder | None = None
        self.network: Sequential | None = None
        self.history: TrainingHistory | None = None
        self._softmax: BlockSoftmax | None = None
        self._latent_dim: int | None = None
        self._rng = np.random.default_rng(self.config.seed)
        # Generation scratch (latents, forward output) keyed by name and
        # reused across calls of the same shape — the adaptive streaming
        # path generates many equal-sized repetition chunks back to back,
        # and none of the decoded output aliases these buffers.
        self._scratch_buffers: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #

    def fit(
        self,
        sample: Relation,
        marginals: list[Marginal],
        sample_weights: np.ndarray | None = None,
        categorical_columns: set[str] | None = None,
    ) -> TrainingHistory:
        """Train the generator from a sample and population marginals.

        ``sample_weights`` (optional) weight the sample-derived fallback
        marginals for uncovered attributes; the coverage penalty always
        uses the raw sample points (coverage is about support, not mass).
        """
        if sample.num_rows == 0:
            raise GenerativeModelError("cannot fit a generator on an empty sample")
        if not marginals:
            raise GenerativeModelError(
                "M-SWG needs at least one population marginal (Sec. 5.2)"
            )
        config = self.config
        self.encoder = TableEncoder.fit(
            sample, marginals, categorical_columns=categorical_columns
        )
        encoded_sample = self.encoder.transform(sample)

        all_marginals = list(marginals) + self._fallback_marginals(
            sample, marginals, sample_weights
        )
        terms = self._build_terms(all_marginals, encoded_sample)

        width = self.encoder.width
        self._latent_dim = config.latent_dim if config.latent_dim is not None else width
        self.network = self._build_network(self._latent_dim, width)

        steps = config.steps_per_epoch
        if steps is None:
            steps = max(1, int(np.ceil(sample.num_rows / config.batch_size)))

        self.history = train_generator(
            self.network,
            latent_dim=self._latent_dim,
            terms=terms,
            rng=self._rng,
            batch_size=config.batch_size,
            epochs=config.epochs,
            steps_per_epoch=steps,
            learning_rate=config.learning_rate,
            lr_factor=config.lr_factor,
            lr_patience=config.lr_patience,
        )
        return self.history

    def _fallback_marginals(
        self,
        sample: Relation,
        marginals: list[Marginal],
        sample_weights: np.ndarray | None,
    ) -> list[Marginal]:
        """Sample-derived 1-D marginals for attributes no marginal covers."""
        covered: set[str] = set()
        for marginal in marginals:
            covered.update(marginal.attributes)
        fallbacks = []
        for name in sample.column_names:
            if name not in covered:
                fallbacks.append(
                    Marginal.from_data(
                        sample, [name], weights=sample_weights, name=f"sample:{name}"
                    )
                )
        return fallbacks

    def _build_terms(
        self, marginals: list[Marginal], encoded_sample: np.ndarray
    ) -> list[LossTerm]:
        assert self.encoder is not None
        config = self.config
        terms: list[LossTerm] = []
        for marginal in marginals:
            attributes = list(marginal.attributes)
            columns = self.encoder.block_indices(attributes)
            points, masses = self._encode_marginal(marginal)
            label = marginal.name or "x".join(attributes)
            if columns.shape[0] == 1:
                loss = QuantileMatchingLoss(
                    points[:, 0], masses, config.batch_size, power=config.power
                )
                terms.append(
                    LossTerm(
                        name=f"W[{label}]",
                        columns=columns,
                        compute=_single_column_term(loss),
                    )
                )
            else:
                projections = random_unit_projections(
                    self._rng, columns.shape[0], config.num_projections
                )
                loss = SlicedMarginalLoss(
                    points, masses, projections, config.batch_size, power=config.power
                )
                terms.append(
                    LossTerm(
                        name=f"SW[{label}]",
                        columns=columns,
                        compute=loss.loss_and_grad,
                    )
                )
        coverage = CoveragePenalty(
            encoded_sample, config.lambda_coverage, squared=config.coverage_squared
        )
        terms.append(
            LossTerm(
                name="coverage",
                columns=np.arange(self.encoder.width),
                compute=coverage.loss_and_grad,
            )
        )
        return terms

    def _encode_marginal(self, marginal: Marginal) -> tuple[np.ndarray, np.ndarray]:
        """Marginal cells as points in the encoded block coordinates."""
        assert self.encoder is not None
        points = []
        masses = []
        for key, mass in marginal.cells():
            pieces = [
                self.encoder.encode_value(attribute, value)
                for attribute, value in zip(marginal.attributes, key)
            ]
            points.append(np.concatenate(pieces))
            masses.append(mass)
        return np.asarray(points), np.asarray(masses)

    def _build_network(self, latent_dim: int, width: int) -> Sequential:
        config = self.config
        layers: list = []
        in_features = latent_dim
        for i in range(config.hidden_layers):
            layers.append(
                Linear(in_features, config.hidden_units, self._rng, name=f"fc{i}")
            )
            if config.batch_norm:
                layers.append(BatchNorm1d(config.hidden_units, name=f"bn{i}"))
            layers.append(ReLU())
            in_features = config.hidden_units
        layers.append(Linear(in_features, width, self._rng, init="xavier", name="out"))
        softmax_blocks = self.encoder.softmax_blocks() if self.encoder else []
        self._softmax = BlockSoftmax(softmax_blocks) if softmax_blocks else None
        if self._softmax is not None:
            layers.append(self._softmax)
        return Sequential(*layers)

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #

    def generate(
        self,
        n: int,
        rng: np.random.Generator | None = None,
        harden_categoricals: bool = True,
    ) -> Relation:
        """Sample ``n`` synthetic population tuples.

        Categorical one-hot blocks are hardened to exact argmax one-hots
        (the paper only forces binary output at generation time).
        """
        if self.network is None or self.encoder is None:
            raise GenerativeModelError("generate() before fit()")
        if n <= 0:
            raise GenerativeModelError(f"need a positive sample size, got {n}")
        rng = rng if rng is not None else self._rng
        latents = rng.normal(size=(n, self._latent_dim))
        return self._decode_latents(latents, harden_categoricals)

    def generate_batch(
        self,
        n: int,
        repetitions: int,
        rng: np.random.Generator | None = None,
        harden_categoricals: bool = True,
    ) -> Relation:
        """``repetitions`` independent samples of ``n`` rows in one pass.

        Each repetition's latents come from its own spawned RNG stream
        (the OPEN per-repetition stream contract); the stacked
        ``(R*n, latent)`` matrix then runs through the network in a
        *single* forward pass.  Every layer — Linear, eval-mode BatchNorm
        (running statistics), ReLU, block softmax — is row-wise, so the
        output rows are bit-identical to ``repetitions`` serial
        ``generate`` calls; the result carries the dense ``__rep__``
        column batched OPEN execution keys on.
        """
        streams = repetition_streams(
            rng if rng is not None else self._rng, repetitions
        )
        return self.generate_batch_streams(n, streams, harden_categoricals)

    def generate_batch_streams(
        self,
        n: int,
        streams: list[np.random.Generator],
        harden_categoricals: bool = True,
    ) -> Relation:
        """One chunk of repetitions, each drawn from its given stream.

        The chunked sibling of :meth:`generate_batch`: callers slice a
        pre-spawned stream list (``streams[start:stop]``), so a chunked
        generation draws exactly the values the monolithic batch would —
        chunking never changes per-repetition randomness.  The local
        ``__rep__`` ids are 0-based within the chunk.
        """
        if self.network is None or self.encoder is None:
            raise GenerativeModelError("generate() before fit()")
        if n <= 0:
            raise GenerativeModelError(f"need a positive sample size, got {n}")
        if not streams:
            raise GenerativeModelError("need at least one repetition stream")
        latents = self._scratch("latents", (len(streams) * n, self._latent_dim))
        for index, stream in enumerate(streams):
            latents[index * n : (index + 1) * n] = stream.normal(
                size=(n, self._latent_dim)
            )
        return with_repetition_ids(
            self._decode_latents(latents, harden_categoricals), len(streams)
        )

    def _scratch(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        """A reusable generation buffer (reallocated on shape change)."""
        buffer = self._scratch_buffers.get(name)
        if buffer is None or buffer.shape != shape:
            buffer = np.empty(shape, dtype=np.float64)
            self._scratch_buffers[name] = buffer
        return buffer

    #: Rows per eval-mode forward chunk.  A stacked R*n batch pushed
    #: through the network in one piece allocates (rows, units) temporaries
    #: per layer that fall out of cache and run several times slower than
    #: the same FLOPs in chunks; every layer is row-wise, so chunking does
    #: not change a single output bit.
    _FORWARD_CHUNK_ROWS = 8192

    def _decode_latents(
        self, latents: np.ndarray, harden_categoricals: bool
    ) -> Relation:
        """Latents → tuples: chunked eval-mode forward, decode.

        Forward chunks write straight into a reusable ``(rows, width)``
        output buffer (no per-chunk pieces list, no concatenate).  The
        explicit hardening pass is skipped: the decoder picks categorical
        values by argmax over each softmax block, and the argmax of a
        hardened one-hot is the argmax of the soft block it was built
        from, so decoded tuples are bit-identical either way — the paper's
        "force the output to be binary for data generation" is realised by
        the argmax decode itself.  ``inverse_transform`` derives fresh
        arrays (clips, argmax picks), so the returned relation never
        aliases the scratch buffer.
        """
        assert self.network is not None and self.encoder is not None
        chunk = self._FORWARD_CHUNK_ROWS
        output = self._scratch("forward", (latents.shape[0], self.encoder.width))
        self.network.eval()
        try:
            for start in range(0, latents.shape[0], chunk):
                output[start : start + chunk] = self.network.forward(
                    latents[start : start + chunk]
                )
        finally:
            self.network.train()
        return self.encoder.inverse_transform(output)

    def generate_many(
        self,
        n: int,
        repetitions: int,
        rng: np.random.Generator | None = None,
    ) -> list[Relation]:
        """``repetitions`` independent generated samples of ``n`` rows each.

        The paper's variance-reduction device for OPEN answers (Sec. 5.3):
        generate 10 samples and combine their answers.
        """
        rng = rng if rng is not None else self._rng
        return [self.generate(n, rng=rng) for _ in range(repetitions)]
