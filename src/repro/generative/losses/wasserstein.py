"""Exact 1-D Wasserstein distance and its differentiable surrogate.

The paper's second WGAN modification (Sec. 5.2): *"compute the Wasserstein
distance exactly [49] instead of using the discriminator approach ...
Not only is computing W efficient for 1-dimensional data, but it makes the
discriminator exact and avoids the need to train discriminator networks."*

For 1-D distributions ``W₁(P, Q) = ∫₀¹ |F_P⁻¹(u) − F_Q⁻¹(u)| du``.  The
training surrogate matches the sorted generated batch against target
quantiles sampled at ``u_j = (j − ½)/n`` — the empirical quantile grid of
the batch itself — giving the standard sliced-Wasserstein-generator
gradient (sign or difference of matched pairs, scattered back through the
sort order).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GenerativeModelError


class WeightedQuantileFunction:
    """Inverse CDF of a weighted discrete 1-D distribution."""

    def __init__(self, values: np.ndarray, weights: np.ndarray | None = None):
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1 or values.size == 0:
            raise GenerativeModelError("quantile function needs a non-empty 1-D value array")
        if weights is None:
            weights = np.ones_like(values)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != values.shape:
                raise GenerativeModelError("values and weights must have equal shape")
            if np.any(weights < 0):
                raise GenerativeModelError("weights must be non-negative")
        total = float(weights.sum())
        if total <= 0:
            raise GenerativeModelError("total weight must be positive")
        order = np.argsort(values, kind="stable")
        self._values = values[order]
        self._cumulative = np.cumsum(weights[order]) / total

    def __call__(self, u: np.ndarray) -> np.ndarray:
        """Quantiles at probabilities ``u`` (step-function inverse CDF)."""
        u = np.asarray(u, dtype=np.float64)
        indices = np.searchsorted(self._cumulative, u, side="left")
        indices = np.clip(indices, 0, self._values.shape[0] - 1)
        return self._values[indices]


def wasserstein_1d(
    u_values: np.ndarray,
    v_values: np.ndarray,
    u_weights: np.ndarray | None = None,
    v_weights: np.ndarray | None = None,
) -> float:
    """Exact W₁ between two weighted 1-D empirical distributions.

    Computed as ``∫ |F_U(t) − F_V(t)| dt`` over the merged support
    (Werman et al. [49]); agrees with ``scipy.stats.wasserstein_distance``.
    """
    u_values = np.asarray(u_values, dtype=np.float64)
    v_values = np.asarray(v_values, dtype=np.float64)
    if u_values.size == 0 or v_values.size == 0:
        raise GenerativeModelError("wasserstein_1d needs non-empty distributions")

    u_weights = _normalized_weights(u_values, u_weights)
    v_weights = _normalized_weights(v_values, v_weights)

    all_values = np.concatenate([u_values, v_values])
    order = np.argsort(all_values, kind="stable")
    all_values = all_values[order]
    deltas = np.diff(all_values)

    u_cdf = _cdf_at(all_values[:-1], u_values, u_weights)
    v_cdf = _cdf_at(all_values[:-1], v_values, v_weights)
    return float(np.sum(np.abs(u_cdf - v_cdf) * deltas))


def _normalized_weights(values: np.ndarray, weights: np.ndarray | None) -> np.ndarray:
    if weights is None:
        return np.full(values.shape[0], 1.0 / values.shape[0])
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != values.shape:
        raise GenerativeModelError("values and weights must have equal shape")
    total = float(weights.sum())
    if total <= 0:
        raise GenerativeModelError("total weight must be positive")
    return weights / total


def _cdf_at(points: np.ndarray, values: np.ndarray, weights: np.ndarray) -> np.ndarray:
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    cumulative = np.cumsum(weights[order])
    indices = np.searchsorted(sorted_values, points, side="right")
    cdf = np.concatenate([[0.0], cumulative])
    return cdf[indices]


class QuantileMatchingLoss:
    """Differentiable W surrogate between a generated batch and a fixed target.

    Precomputes the target quantiles at the batch's empirical grid
    ``u_j = (j − ½)/n``; ``loss_and_grad`` sorts the batch, matches
    order statistics against those quantiles, and scatters the gradient
    back through the sort.

    ``power=2`` (default) gives the squared surrogate (smooth gradients,
    standard in SWG implementations); ``power=1`` gives the exact-W₁-style
    sign gradient.
    """

    def __init__(
        self,
        target_values: np.ndarray,
        target_weights: np.ndarray | None,
        batch_size: int,
        power: int = 2,
    ):
        if power not in (1, 2):
            raise GenerativeModelError(f"power must be 1 or 2, got {power}")
        if batch_size <= 0:
            raise GenerativeModelError(f"batch_size must be positive, got {batch_size}")
        quantile_fn = WeightedQuantileFunction(target_values, target_weights)
        grid = (np.arange(batch_size) + 0.5) / batch_size
        self.target_quantiles = quantile_fn(grid)
        self.batch_size = batch_size
        self.power = power

    def loss_and_grad(self, x: np.ndarray) -> tuple[float, np.ndarray]:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.batch_size,):
            raise GenerativeModelError(
                f"expected batch of shape ({self.batch_size},), got {x.shape}"
            )
        order = np.argsort(x, kind="stable")
        diff = x[order] - self.target_quantiles
        if self.power == 2:
            loss = float(np.mean(diff * diff))
            grad_sorted = 2.0 * diff / self.batch_size
        else:
            loss = float(np.mean(np.abs(diff)))
            grad_sorted = np.sign(diff) / self.batch_size
        grad = np.empty_like(x)
        grad[order] = grad_sorted
        return loss, grad
