"""The sample-coverage penalty ``λ E_{x~G} min_{y∈S} ‖x − y‖₂``.

This is the paper's "L2 Distance to Sample" branch (Fig. 4): it anchors
generated points to the manifold the sample occupies (the Manifold
Hypothesis + Sample Coverage assumptions of Sec. 5.2), while the marginal
terms pull the distribution towards the population.

``squared=True`` (default) optimises the squared distance, which has a
smooth gradient everywhere; ``squared=False`` follows the paper's norm
literally (gradient clipped near zero distance).  The nearest-neighbour
lookup uses a scipy cKDTree built once over the encoded sample.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.errors import GenerativeModelError


class CoveragePenalty:
    def __init__(self, sample_points: np.ndarray, lam: float, squared: bool = True):
        sample_points = np.asarray(sample_points, dtype=np.float64)
        if sample_points.ndim != 2 or sample_points.shape[0] == 0:
            raise GenerativeModelError("coverage penalty needs a non-empty 2-D sample matrix")
        if lam < 0:
            raise GenerativeModelError(f"lambda must be non-negative, got {lam}")
        self.sample_points = sample_points
        self.lam = float(lam)
        self.squared = squared
        self._tree = cKDTree(sample_points)

    def loss_and_grad(self, x: np.ndarray) -> tuple[float, np.ndarray]:
        x = np.asarray(x, dtype=np.float64)
        if self.lam == 0.0:
            return 0.0, np.zeros_like(x)
        distances, indices = self._tree.query(x)
        nearest = self.sample_points[indices]
        diff = x - nearest
        n = x.shape[0]
        if self.squared:
            loss = self.lam * float(np.mean(distances**2))
            grad = self.lam * 2.0 * diff / n
        else:
            loss = self.lam * float(np.mean(distances))
            safe = np.maximum(distances, 1e-12)[:, None]
            grad = self.lam * diff / safe / n
        return loss, grad
