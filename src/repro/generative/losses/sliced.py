"""Sliced Wasserstein loss for 2-D (and higher) marginals.

The paper (Sec. 5.2): *"by using the sliced Wasserstein distance [46, 15],
we can randomly project the marginals onto multiple one dimensional spaces
and compute the Wasserstein distance exactly for each projection"* —
the loss term ``(1/p) Σ_{{i,j}} Σ_{ω∈Ω} W(P_ijω, Q_ijω)``.

A marginal over an attribute pair lives in the *encoded* space of those
attributes (a one-hot categorical block contributes one dimension per
category — flights Table 1's "M-SWG Dim"), so projections are unit vectors
of that concatenated block dimensionality.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GenerativeModelError
from repro.generative.losses.wasserstein import WeightedQuantileFunction


def random_unit_projections(rng: np.random.Generator, dim: int, count: int) -> np.ndarray:
    """``count`` random directions on the unit sphere in ``R^dim``."""
    if dim <= 0 or count <= 0:
        raise GenerativeModelError(f"need positive dim and count, got ({dim}, {count})")
    directions = rng.normal(size=(count, dim))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    # A zero draw has probability 0 but guard against it anyway.
    norms[norms == 0.0] = 1.0
    return directions / norms


class SlicedMarginalLoss:
    """Average exact-1-D-W surrogate over random projections of one marginal.

    ``target_points`` are the marginal's cells embedded in the block's
    encoded coordinates, ``target_weights`` their masses.  Target
    quantiles per projection are precomputed once (the marginal and the
    projection set are fixed during training).
    """

    def __init__(
        self,
        target_points: np.ndarray,
        target_weights: np.ndarray,
        projections: np.ndarray,
        batch_size: int,
        power: int = 2,
    ):
        target_points = np.asarray(target_points, dtype=np.float64)
        projections = np.asarray(projections, dtype=np.float64)
        if target_points.ndim != 2:
            raise GenerativeModelError("target_points must be 2-D (cells x dims)")
        if projections.ndim != 2 or projections.shape[1] != target_points.shape[1]:
            raise GenerativeModelError(
                f"projections shape {projections.shape} does not match target "
                f"dimensionality {target_points.shape[1]}"
            )
        if power not in (1, 2):
            raise GenerativeModelError(f"power must be 1 or 2, got {power}")

        self.projections = projections
        self.batch_size = int(batch_size)
        self.power = power

        grid = (np.arange(self.batch_size) + 0.5) / self.batch_size
        projected = target_points @ projections.T  # (cells, p)
        quantiles = np.empty((self.batch_size, projections.shape[0]))
        for k in range(projections.shape[0]):
            quantiles[:, k] = WeightedQuantileFunction(projected[:, k], target_weights)(grid)
        self.target_quantiles = quantiles  # (n, p)

    @property
    def num_projections(self) -> int:
        return self.projections.shape[0]

    def loss_and_grad(self, x: np.ndarray) -> tuple[float, np.ndarray]:
        """Loss and gradient for a generated block ``x`` of shape (n, dims)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.batch_size, self.projections.shape[1]):
            raise GenerativeModelError(
                f"expected block of shape ({self.batch_size}, "
                f"{self.projections.shape[1]}), got {x.shape}"
            )
        z = x @ self.projections.T  # (n, p)
        order = np.argsort(z, axis=0, kind="stable")
        z_sorted = np.take_along_axis(z, order, axis=0)
        diff = z_sorted - self.target_quantiles

        n, p = diff.shape
        if self.power == 2:
            loss = float(np.mean(diff * diff))  # mean over n and p
            grad_sorted = 2.0 * diff / (n * p)
        else:
            loss = float(np.mean(np.abs(diff)))
            grad_sorted = np.sign(diff) / (n * p)

        grad_z = np.empty_like(grad_sorted)
        np.put_along_axis(grad_z, order, grad_sorted, axis=0)
        return loss, grad_z @ self.projections
