"""M-SWG loss terms (paper Sec. 5.2, Eq. 1).

The total objective is::

    min_G  Σ_{i∈I1} W(P_i, Q_i)                      # 1-D marginals, exact
         + (1/p) Σ_{{i,j}∈I2} Σ_{ω∈Ω} W(P_ijω, Q_ijω)  # 2-D marginals, sliced
         + λ E_{x~G} [ min_{y∈S} ‖x − y‖₂ ]          # sample-coverage penalty

For training we use the standard sorting/quantile-matching surrogate
(sorted generated values matched against target quantiles) whose gradient
is closed-form; the exact W₁ metric (``wasserstein_1d``) is used for
evaluation.
"""

from repro.generative.losses.coverage import CoveragePenalty
from repro.generative.losses.sliced import SlicedMarginalLoss, random_unit_projections
from repro.generative.losses.wasserstein import (
    QuantileMatchingLoss,
    WeightedQuantileFunction,
    wasserstein_1d,
)

__all__ = [
    "wasserstein_1d",
    "WeightedQuantileFunction",
    "QuantileMatchingLoss",
    "SlicedMarginalLoss",
    "random_unit_projections",
    "CoveragePenalty",
]
