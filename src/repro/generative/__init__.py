"""OPEN query machinery: the marginal-constrained sliced-Wasserstein
generator (M-SWG, paper Sec. 5) and its substrates.

Because the environment has no deep-learning framework, everything is
implemented on numpy with hand-derived gradients:

- ``repro.generative.nn`` — Linear / ReLU / BatchNorm1d / block softmax
  modules with manual backprop (gradient-checked in the test suite).
- ``repro.generative.optim`` — Adam and ReduceLROnPlateau (the paper's
  training setup: "Pytorch's Adam optimizer with the default settings and
  an initial learning rate of 0.001 that decreases by a factor of 10 if a
  plateau is reached").
- ``repro.generative.losses`` — exact 1-D Wasserstein distance (sorting /
  quantile matching, per [49]), sliced projections for 2-D marginals
  (per [46, 15]), and the λ-weighted nearest-sample coverage penalty.
- ``repro.generative.encoding`` — one-hot + min-max table encoding
  ("we one-hot encode the categorical variables and scale all attributes
  to be between 0 and 1").
- ``repro.generative.mswg`` — the generator itself:
  ``MSWG(config).fit(sample, marginals).generate(n)``.
"""

from repro.generative.encoding import TableEncoder
from repro.generative.mswg import MSWG, MswgConfig

__all__ = ["MSWG", "MswgConfig", "TableEncoder"]
