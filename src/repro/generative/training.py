"""Generator training loop: composite loss, Adam, plateau LR decay."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.generative.nn.module import Module
from repro.generative.optim.adam import Adam
from repro.generative.optim.schedulers import ReduceLROnPlateau


@dataclass(frozen=True)
class LossTerm:
    """One additive term of the training objective.

    ``columns`` selects the encoded-matrix columns the term reads;
    ``compute`` maps that block to ``(loss, grad_wrt_block)``.
    """

    name: str
    columns: np.ndarray
    compute: Callable[[np.ndarray], tuple[float, np.ndarray]]


@dataclass
class EpochRecord:
    epoch: int
    total_loss: float
    term_losses: dict[str, float]
    learning_rate: float


@dataclass
class TrainingHistory:
    """Per-epoch loss traces from one ``fit`` call."""

    epochs: list[EpochRecord] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epochs[-1].total_loss if self.epochs else float("nan")

    def losses(self) -> list[float]:
        return [record.total_loss for record in self.epochs]

    def term_trace(self, name: str) -> list[float]:
        return [record.term_losses.get(name, 0.0) for record in self.epochs]


def evaluate_terms(
    output: np.ndarray, terms: Sequence[LossTerm]
) -> tuple[float, dict[str, float], np.ndarray]:
    """Total loss, per-term losses, and the gradient w.r.t. ``output``."""
    grad = np.zeros_like(output)
    total = 0.0
    per_term: dict[str, float] = {}
    for term in terms:
        block = output[:, term.columns]
        loss, block_grad = term.compute(block)
        grad[:, term.columns] += block_grad
        total += loss
        per_term[term.name] = loss
    return total, per_term, grad


def train_generator(
    network: Module,
    latent_dim: int,
    terms: Sequence[LossTerm],
    rng: np.random.Generator,
    batch_size: int,
    epochs: int,
    steps_per_epoch: int,
    learning_rate: float,
    lr_factor: float = 0.1,
    lr_patience: int = 5,
) -> TrainingHistory:
    """Train ``network`` (latent → encoded row) against the loss terms.

    Latents are standard Gaussian (paper Fig. 4: ``N(0, I_ℓ)``).  One
    "epoch" is ``steps_per_epoch`` optimisation steps; the plateau
    scheduler watches the epoch-mean total loss.
    """
    optimizer = Adam(network.parameters(), learning_rate=learning_rate)
    scheduler = ReduceLROnPlateau(optimizer, factor=lr_factor, patience=lr_patience)
    history = TrainingHistory()

    network.train()
    for epoch in range(1, epochs + 1):
        epoch_total = 0.0
        epoch_terms: dict[str, float] = {}
        for _ in range(steps_per_epoch):
            latents = rng.normal(size=(batch_size, latent_dim))
            output = network.forward(latents)
            total, per_term, grad = evaluate_terms(output, terms)

            optimizer.zero_grad()
            network.backward(grad)
            optimizer.step()

            epoch_total += total
            for name, value in per_term.items():
                epoch_terms[name] = epoch_terms.get(name, 0.0) + value

        mean_total = epoch_total / steps_per_epoch
        history.epochs.append(
            EpochRecord(
                epoch=epoch,
                total_loss=mean_total,
                term_losses={k: v / steps_per_epoch for k, v in epoch_terms.items()},
                learning_rate=optimizer.learning_rate,
            )
        )
        scheduler.step(mean_total)
    return history
