"""M-SWG model selection by random-query error (paper Sec. 5.3).

"We choose the model parameters by a small hyperparameter grid search ...
We select the model receiving the lowest average query error from running
200 random queries over the continuous attributes with the same template
as queries 1-4 where the attributes and predicates are randomly generated.
We then rerun the chosen model with four different random initializations
... and choose the one receiving the lowest error on the same 200 queries."

The grid the paper searched: layers ∈ {3, 5, 10}, hidden units ∈ {50, 200},
λ ∈ {1e-6, 1e-7} (with the 200-unit/10-layer and 50-unit/3-layer corners
pruned).  :func:`paper_grid` reproduces it; :func:`select_model` runs any
grid.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.generative.mswg import MSWG, MswgConfig
from repro.metrics.error import average_percent_difference
from repro.relational.relation import Relation
from repro.reweight.weights import uniform_weights
from repro.workloads.queries import AggregateQuery
from repro.catalog.metadata import Marginal


@dataclass(frozen=True)
class CandidateScore:
    """One grid point's outcome."""

    config: MswgConfig
    mean_error: float
    answered_queries: int

    def describe(self) -> str:
        return (
            f"layers={self.config.hidden_layers} units={self.config.hidden_units} "
            f"lambda={self.config.lambda_coverage:g} -> "
            f"{self.mean_error:.2f}% over {self.answered_queries} queries"
        )


def paper_grid(base: MswgConfig) -> list[MswgConfig]:
    """The paper's grid: layers x units x lambda, with the stated pruning.

    "We search over the number of layers = 3, 5, 10, number of hidden
    nodes = 50, 200, and λ = 0.000001, 0.0000001. When the number of
    hidden nodes is 200 (50), we do not try 10 (3) layers."
    """
    candidates = []
    for layers in (3, 5, 10):
        for units in (50, 200):
            if units == 200 and layers == 10:
                continue
            if units == 50 and layers == 3:
                continue
            for lam in (1e-6, 1e-7):
                candidates.append(
                    replace(
                        base,
                        hidden_layers=layers,
                        hidden_units=units,
                        lambda_coverage=lam,
                    )
                )
    return candidates


def score_model(
    model: MSWG,
    queries: Sequence[AggregateQuery],
    truth_relation: Relation,
    population_size: float,
    repetitions: int = 3,
    rng: np.random.Generator | None = None,
    rows: int | None = None,
) -> CandidateScore:
    """Mean avg-%-difference of a fitted model over a query workload.

    Per the paper, queries where either the truth or the estimate is empty
    are excluded (the "not-empty filter").
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    rows = rows or min(truth_relation.num_rows, 5_000)
    generated = [model.generate(rows, rng=rng) for _ in range(repetitions)]
    weights = uniform_weights(rows, population_size)

    errors = []
    for query in queries:
        truth = query.evaluate(truth_relation)
        if not truth:
            continue
        answers = [query.evaluate(g, weights) for g in generated]
        common = set(answers[0])
        for answer in answers[1:]:
            common &= set(answer)
        if not common:
            continue
        combined = {
            key: float(np.mean([answer[key] for answer in answers])) for key in common
        }
        error = average_percent_difference(combined, truth)
        if error is not None and np.isfinite(error):
            errors.append(error)
    mean_error = float(np.mean(errors)) if errors else float("inf")
    return CandidateScore(model.config, mean_error, len(errors))


def select_model(
    sample: Relation,
    marginals: list[Marginal],
    queries: Sequence[AggregateQuery],
    truth_relation: Relation,
    population_size: float,
    grid: Sequence[MswgConfig],
    restarts: int = 1,
    rng: np.random.Generator | None = None,
) -> tuple[MSWG, list[CandidateScore]]:
    """Grid search + random restarts, returning the best fitted model.

    ``truth_relation`` plays the role of the paper's held-out evaluation
    data; in a real deployment the scoring workload would use reported
    aggregates instead.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    scores: list[CandidateScore] = []
    best_model: MSWG | None = None
    best_score = float("inf")

    for config in grid:
        model = MSWG(config)
        model.fit(sample, marginals)
        score = score_model(model, queries, truth_relation, population_size, rng=rng)
        scores.append(score)
        if score.mean_error < best_score:
            best_score, best_model = score.mean_error, model

    assert best_model is not None
    # Re-run the winning configuration with fresh initialisations.
    for restart in range(1, restarts):
        config = best_model.config.with_seed(best_model.config.seed + restart)
        model = MSWG(config)
        model.fit(sample, marginals)
        score = score_model(model, queries, truth_relation, population_size, rng=rng)
        scores.append(score)
        if score.mean_error < best_score:
            best_score, best_model = score.mean_error, model
    return best_model, scores
