"""Durable columnar storage: mmap-able pages, a WAL, and checkpoints.

See ``ARCHITECTURE.md`` §10.  Three layers:

- :mod:`repro.storage.pages` — the on-disk columnar page format, byte-
  identical to the shared-memory layout so reopening is an ``mmap`` plus a
  header parse (O(1) in rows) and the worker pool can scan page files
  zero-copy.
- :mod:`repro.storage.wal` — the framed, checksummed write-ahead log with
  torn-tail recovery and monotonic LSNs.
- :mod:`repro.storage.store` — the :class:`DurableStore` tying both into
  checkpoints, boot-time restore/replay, rollback, and persisted fitted
  models.
"""

from repro.storage.pages import (
    MappedRelation,
    PageFormatError,
    open_page,
    read_descriptor,
    write_page,
)
from repro.storage.store import DurableStore, StorageError, WEIGHTS_EXTRA
from repro.storage.wal import WalError, WriteAheadLog

__all__ = [
    "DurableStore",
    "MappedRelation",
    "PageFormatError",
    "StorageError",
    "WEIGHTS_EXTRA",
    "WalError",
    "WriteAheadLog",
    "open_page",
    "read_descriptor",
    "write_page",
]
