"""The write-ahead log: framed, checksummed, torn-tail tolerant.

Every durable mutation the engine applies (DDL, INSERT, UPDATE WEIGHTS,
programmatic ingests) appends one record here; boot replays the records
whose LSN is newer than the last checkpoint.  The format is deliberately
dumb::

    [u32 payload length][u32 crc32][u64 LSN][payload bytes]   (repeated)

- The CRC covers the LSN and the payload, so a bit flip anywhere in a
  frame is detected, not replayed.
- LSNs increase monotonically across the store's whole lifetime (they
  survive checkpoint truncation), which makes replay idempotent: a crash
  between "checkpoint renamed" and "log truncated" leaves records in the
  log that the checkpoint already contains, and recovery skips every
  record with ``lsn <= checkpoint lsn`` instead of applying it twice.
- Recovery reads frames until the first torn one (short header, short
  payload, or CRC mismatch), *truncates the file at the last good frame*,
  and returns the intact records — the crash-consistency contract the
  storage tests pin: a SIGKILL mid-append loses at most the in-flight
  record, never the committed prefix.

Appends ``flush()`` to the OS on every record (surviving process death,
i.e. SIGKILL); ``sync=True`` additionally ``fsync``\\ s each append to
survive power loss, at a large per-write cost.  Checkpoints always fsync.
"""

from __future__ import annotations

import os
import struct
import zlib

from repro.errors import MosaicError

_FRAME = struct.Struct("<IIQ")  # payload length, crc32, lsn


class WalError(MosaicError):
    """The log cannot be opened or appended (not raised for torn tails)."""


class WriteAheadLog:
    """One append-only log file plus its monotonic LSN counter.

    Not thread-safe by itself: the engine serializes every append under
    its write lock, which is also what orders records correctly.
    """

    def __init__(self, path: str | os.PathLike, sync: bool = False):
        self.path = os.fspath(path)
        self.sync = sync
        self._handle = None
        self._next_lsn = 1
        self.torn_bytes_dropped = 0
        self.records_appended = 0

    # ------------------------------------------------------------------ #
    # Recovery + lifecycle
    # ------------------------------------------------------------------ #

    def open(self) -> list[tuple[int, bytes]]:
        """Scan the log, truncate any torn tail, open for append.

        Returns the intact ``(lsn, payload)`` records in file order and
        positions the LSN counter after the newest one.
        """
        records: list[tuple[int, bytes]] = []
        good_end = 0
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            data = b""
        position = 0
        while position + _FRAME.size <= len(data):
            length, crc, lsn = _FRAME.unpack_from(data, position)
            end = position + _FRAME.size + length
            if end > len(data):
                break  # torn: frame promises more bytes than the file has
            payload = data[position + _FRAME.size : end]
            if zlib.crc32(data[position + 8 : position + 16] + payload) != crc:
                break  # torn or corrupt frame: stop replay here
            records.append((lsn, payload))
            good_end = end
            position = end
        self.torn_bytes_dropped = len(data) - good_end
        self._handle = open(self.path, "ab")
        if self.torn_bytes_dropped:
            # Drop the torn tail so later appends start at a frame boundary.
            self._handle.truncate(good_end)
            self._handle.seek(good_end)
        if records:
            self._next_lsn = max(self._next_lsn, records[-1][0] + 1)
        return records

    def set_next_lsn(self, next_lsn: int) -> None:
        """Advance the counter past everything a checkpoint contains."""
        self._next_lsn = max(self._next_lsn, next_lsn)

    def close(self) -> None:
        handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()

    @property
    def closed(self) -> bool:
        return self._handle is None

    # ------------------------------------------------------------------ #
    # Append + truncate
    # ------------------------------------------------------------------ #

    def append(self, payload: bytes) -> int:
        """Append one record; returns its LSN."""
        if self._handle is None:
            raise WalError(f"write-ahead log {self.path} is not open")
        lsn = self._next_lsn
        self._next_lsn += 1
        crc = zlib.crc32(struct.pack("<Q", lsn) + payload)
        self._handle.write(_FRAME.pack(len(payload), crc, lsn))
        self._handle.write(payload)
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())
        self.records_appended += 1
        return lsn

    def truncate(self) -> None:
        """Empty the log (checkpoint took ownership of every record).

        The LSN counter is *not* reset: monotonic LSNs across truncations
        are what make replay-after-partial-checkpoint idempotent.
        """
        if self._handle is None:
            raise WalError(f"write-ahead log {self.path} is not open")
        self._handle.truncate(0)
        self._handle.seek(0)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def size(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    @property
    def next_lsn(self) -> int:
        return self._next_lsn
