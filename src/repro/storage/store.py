"""The durable store: checkpoints + WAL + persisted fitted models.

Directory layout (one store per engine)::

    <data_dir>/
      CURRENT            # name of the live checkpoint ("ck-000003")
      wal.log            # records newer than the live checkpoint
      ck-000003/
        catalog.pkl      # names, versions, predicates, mechanisms, marginals
        models.pkl       # fitted generators / reweights, name-keyed
        tables/t0000.page ...   # one mmap-able columnar page per relation

Checkpoint protocol (crash-safe at every step):

1. Write everything into ``ck-<n>.tmp`` (page files are themselves
   atomic temp+rename), fsync each file and the directory.
2. ``os.rename`` the temp directory to ``ck-<n>``; fsync ``data_dir``.
3. Point ``CURRENT`` at ``ck-<n>`` via atomic temp-write+rename; fsync.
4. Truncate the WAL and delete superseded checkpoint directories.

A crash before (3) leaves ``CURRENT`` on the old checkpoint — the ``.tmp``
or unreferenced directory is swept on the next boot.  A crash between (3)
and (4) leaves already-checkpointed records in the log; replay skips them
by LSN (see :mod:`repro.storage.wal`).  The boot checkpoint's directory is
never deleted while the process lives, because restored relations keep
``mmap`` views into its page files.

Model persistence re-keys cache entries across process boundaries:
in-memory model caches key on process-unique catalog uids, so entries are
persisted under *names* plus the version stamps they were fitted at, and
restored — after WAL replay — only if the restored object's versions still
match (an entry invalidated by replayed DML simply stays cold).  Restored
entries land back under the fresh uids with freshly computed stamps, so
the first OPEN/SEMI-OPEN query after a restart is a cache *hit*.
"""

from __future__ import annotations

import io
import os
import pickle
import shutil
import time

from repro.catalog.catalog import Catalog
from repro.catalog.population import PopulationRelation
from repro.catalog.sample import SampleRelation
from repro.errors import MosaicError
from repro.relational.relation import Relation
from repro.storage.pages import MappedRelation, open_page, write_page
from repro.storage.wal import WriteAheadLog

#: The extra-slot name sample weights ship under inside a page file.
WEIGHTS_EXTRA = "__weights__"

CURRENT_POINTER = "CURRENT"
WAL_NAME = "wal.log"

#: Appending past this many WAL bytes triggers an automatic checkpoint
#: (override via ``MOSAIC_WAL_LIMIT_BYTES`` or ``Engine(wal_limit_bytes=)``).
DEFAULT_WAL_LIMIT_BYTES = 64 * 1024 * 1024


class StorageError(MosaicError):
    """The durable store is unusable (bad directory, corrupt checkpoint)."""


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_file(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _checkpoint_number(name: str) -> int | None:
    if not name.startswith("ck-"):
        return None
    try:
        return int(name[3:])
    except ValueError:
        return None


class DurableStore:
    """One engine's durable state: catalog checkpoints + write-ahead log.

    Thread safety: every mutating method is called by the engine under its
    *write* lock (or from the single-threaded boot/shutdown paths), which
    is the same exclusion that freezes the catalog being written out.
    """

    def __init__(
        self,
        data_dir: str | os.PathLike,
        *,
        wal_sync: bool = False,
        wal_limit_bytes: int | None = None,
    ):
        self.path = os.path.abspath(os.fspath(data_dir))
        os.makedirs(self.path, exist_ok=True)
        if wal_limit_bytes is None:
            env = os.environ.get("MOSAIC_WAL_LIMIT_BYTES", "").strip()
            wal_limit_bytes = int(env) if env else DEFAULT_WAL_LIMIT_BYTES
        self.wal_limit_bytes = max(1, int(wal_limit_bytes))
        self._wal = WriteAheadLog(os.path.join(self.path, WAL_NAME), sync=wal_sync)
        self._boot_checkpoint: str | None = None  # never deleted while live
        self._current: str | None = None
        self._closed = False
        self.stats = {
            "checkpoints_written": 0,
            "wal_records": 0,
            "wal_replayed": 0,
            "restored_tables": 0,
            "restored_samples": 0,
            "restored_models": 0,
            "stale_models_skipped": 0,
            "unpicklable_skipped": 0,
            "torn_wal_bytes": 0,
            "restore_ms": 0.0,
        }

    # ------------------------------------------------------------------ #
    # Boot
    # ------------------------------------------------------------------ #

    def open(self, engine) -> None:
        """Restore the engine's catalog and model caches, replay the WAL."""
        started = time.perf_counter()
        self._sweep_stale_dirs()
        self._current = self._read_current()
        self._boot_checkpoint = self._current
        checkpoint_lsn = 0
        models: list[dict] = []
        if self._current is not None:
            checkpoint_lsn, models = self._load_checkpoint(engine, self._current)
        records = self._wal.open()
        self.stats["torn_wal_bytes"] = self._wal.torn_bytes_dropped
        self._wal.set_next_lsn(checkpoint_lsn + 1)
        replayed = 0
        for lsn, payload in records:
            if lsn <= checkpoint_lsn:
                continue  # the checkpoint already contains this record
            engine._apply_wal_record(pickle.loads(payload))
            replayed += 1
        self.stats["wal_replayed"] = replayed
        # After replay: entries whose sample/population was mutated by a
        # replayed record no longer match their persisted versions and are
        # skipped — exactly the staleness the version stamps encode.
        self._restore_models(engine, models)
        self.stats["restore_ms"] = (time.perf_counter() - started) * 1000.0

    def _sweep_stale_dirs(self) -> None:
        """Drop half-written ``.tmp`` checkpoints a crash left behind."""
        try:
            names = os.listdir(self.path)
        except OSError:
            return
        for name in names:
            if name.endswith(".tmp") and name.startswith("ck-"):
                shutil.rmtree(os.path.join(self.path, name), ignore_errors=True)

    def _read_current(self) -> str | None:
        try:
            with open(os.path.join(self.path, CURRENT_POINTER)) as handle:
                name = handle.read().strip()
        except FileNotFoundError:
            return None
        if not name or _checkpoint_number(name) is None:
            raise StorageError(f"corrupt CURRENT pointer in {self.path}: {name!r}")
        if not os.path.isdir(os.path.join(self.path, name)):
            raise StorageError(
                f"CURRENT points at missing checkpoint {name!r} in {self.path}"
            )
        return name

    # ------------------------------------------------------------------ #
    # WAL records
    # ------------------------------------------------------------------ #

    def log_record(self, record: dict) -> int:
        """Append one replayable mutation record; returns its LSN."""
        lsn = self._wal.append(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))
        self.stats["wal_records"] += 1
        return lsn

    def wal_size(self) -> int:
        return self._wal.size()

    # ------------------------------------------------------------------ #
    # Checkpoint
    # ------------------------------------------------------------------ #

    def checkpoint(self, engine) -> dict:
        """Write the engine's full durable state as a new checkpoint.

        Caller holds the engine write lock (or is the post-fence shutdown
        path); the catalog cannot change underneath the copy.
        """
        if self._closed:
            raise StorageError("durable store is closed")
        catalog = engine.catalog
        transient = getattr(engine, "_transient_tables", set())
        number = 1
        if self._current is not None:
            number = (_checkpoint_number(self._current) or 0) + 1
        name = f"ck-{number:06d}"
        temp = os.path.join(self.path, f"{name}.tmp")
        shutil.rmtree(temp, ignore_errors=True)
        tables_dir = os.path.join(temp, "tables")
        os.makedirs(tables_dir)

        file_index = 0
        auxiliary_meta = []
        for table_name in sorted(catalog._auxiliary):
            if table_name in transient:
                continue
            file_name = f"t{file_index:04d}.page"
            file_index += 1
            write_page(os.path.join(tables_dir, file_name), catalog._auxiliary[table_name])
            auxiliary_meta.append(
                {
                    "name": table_name,
                    "version": catalog._auxiliary_versions[table_name],
                    "file": file_name,
                }
            )
        sample_meta = []
        for sample_name in sorted(catalog._samples):
            sample = catalog._samples[sample_name]
            file_name = f"t{file_index:04d}.page"
            file_index += 1
            write_page(
                os.path.join(tables_dir, file_name),
                sample.relation,
                {WEIGHTS_EXTRA: sample._weights},
            )
            sample_meta.append(
                {
                    "name": sample.name,
                    "population": sample.population,
                    "version": sample.version,
                    "predicate": sample.defining_predicate,
                    "mechanism": sample.mechanism,
                    "file": file_name,
                }
            )

        # Populations pickle whole (schema, predicate, marginals); their
        # process-unique uids are reassigned on restore.  Globals first so
        # create_population's view validation passes on reload.
        populations = sorted(
            catalog._populations.values(), key=lambda p: (not p.is_global, p.name)
        )
        manifest = {
            "lsn": self._wal.next_lsn - 1,  # newest record this checkpoint contains
            "catalog_version": catalog.version,
            "auxiliary": auxiliary_meta,
            "auxiliary_versions": dict(catalog._auxiliary_versions),
            "samples": sample_meta,
            "populations": populations,
            "metadata_owner": dict(catalog._metadata_owner),
            "global_population": catalog._global_population,
        }
        with open(os.path.join(temp, "catalog.pkl"), "wb") as handle:
            pickle.dump(manifest, handle, protocol=pickle.HIGHEST_PROTOCOL)
        models = self._persist_models(engine)
        with open(os.path.join(temp, "models.pkl"), "wb") as handle:
            pickle.dump(models, handle, protocol=pickle.HIGHEST_PROTOCOL)

        for directory, _, files in os.walk(temp):
            for file_name in files:
                _fsync_file(os.path.join(directory, file_name))
            _fsync_dir(directory)
        delay = os.environ.get("MOSAIC_TEST_CHECKPOINT_DELAY", "").strip()
        if delay:
            # Crash-test hook: widen the window between the temp write and
            # the rename so a test can SIGKILL exactly mid-checkpoint.
            time.sleep(float(delay))
        final = os.path.join(self.path, name)
        os.rename(temp, final)
        _fsync_dir(self.path)
        self._write_current(name)
        previous, self._current = self._current, name
        self._wal.truncate()
        self._delete_superseded(keep={name, self._boot_checkpoint, previous})
        self.stats["checkpoints_written"] += 1
        return {
            "checkpoint": name,
            "tables": file_index,
            "models": len(models),
            "lsn": manifest["lsn"],
        }

    def _write_current(self, name: str) -> None:
        pointer = os.path.join(self.path, CURRENT_POINTER)
        temp = f"{pointer}.tmp.{os.getpid()}"
        with open(temp, "w") as handle:
            handle.write(name + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, pointer)
        _fsync_dir(self.path)

    def _delete_superseded(self, keep: set) -> None:
        """Garbage-collect old checkpoints.

        The boot checkpoint survives (live relations mmap its pages); the
        immediately superseded one survives one extra round purely so a
        concurrent reader of CURRENT written microseconds ago never races
        a directory deletion.
        """
        try:
            names = os.listdir(self.path)
        except OSError:
            return
        for name in names:
            if _checkpoint_number(name) is None or name in keep:
                continue
            shutil.rmtree(os.path.join(self.path, name), ignore_errors=True)

    # ------------------------------------------------------------------ #
    # Restore
    # ------------------------------------------------------------------ #

    def _load_checkpoint(self, engine, name: str) -> tuple[int, list[dict]]:
        """Rebuild the engine's catalog from checkpoint ``name``.

        Returns ``(checkpoint lsn, persisted model entries)``.
        """
        directory = os.path.join(self.path, name)
        try:
            with open(os.path.join(directory, "catalog.pkl"), "rb") as handle:
                manifest = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError) as exc:
            raise StorageError(f"corrupt checkpoint {name} in {self.path}: {exc}") from exc

        catalog = Catalog()
        for population in manifest["populations"]:
            # Fresh process-unique uid: a restored uid could collide with a
            # population created later in this process, aliasing caches.
            population.uid = next(PopulationRelation._uid_counter)
            catalog._populations[population.name] = population
            if population.is_global:
                catalog._global_population = population.name
        for meta in manifest["auxiliary"]:
            relation, _ = open_page(os.path.join(directory, "tables", meta["file"]))
            catalog._auxiliary[meta["name"]] = relation
            self.stats["restored_tables"] += 1
        catalog._auxiliary_versions = dict(manifest["auxiliary_versions"])
        for meta in manifest["samples"]:
            relation, extras = open_page(os.path.join(directory, "tables", meta["file"]))
            # Construct over an empty relation so no O(rows) ones-vector is
            # allocated, then adopt the mapped tuples and the page's weight
            # view directly: the vector was validated when written, and
            # every mutator replaces rather than writes in place, so a
            # read-only view is safe — reopen stays O(1) in rows.
            sample = SampleRelation(
                name=meta["name"],
                relation=Relation.empty(relation.schema),
                population=meta["population"],
                defining_predicate=meta["predicate"],
                mechanism=meta["mechanism"],
            )
            sample.relation = relation
            sample._weights = extras[WEIGHTS_EXTRA]
            sample.version = meta["version"]
            catalog._samples[sample.name] = sample
            self.stats["restored_samples"] += 1
        catalog._metadata_owner = dict(manifest["metadata_owner"])
        catalog._global_population = manifest["global_population"]
        catalog.version = manifest["catalog_version"]
        engine.catalog = catalog

        try:
            with open(os.path.join(directory, "models.pkl"), "rb") as handle:
                models = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError):
            models = []  # models are an optimisation, never required state
        return int(manifest["lsn"]), models

    # ------------------------------------------------------------------ #
    # Fitted-model persistence (name-keyed across process boundaries)
    # ------------------------------------------------------------------ #

    def _persist_models(self, engine) -> list[dict]:
        catalog = engine.catalog
        population_names = {p.uid: p.name for p in catalog._populations.values()}
        sample_names = {s.uid: s.name for s in catalog._samples.values()}
        gp = catalog.global_population
        entries: list[dict] = []

        def current_stamp(population, sample):
            return (
                sample.version,
                population.metadata_version,
                None if gp is None else (gp.uid, gp.metadata_version),
            )

        def named_entry(cache_name, pop_uid, sample_uid, stamp, value, factory=None):
            pop_name = population_names.get(pop_uid)
            sample_name = sample_names.get(sample_uid)
            if pop_name is None or sample_name is None:
                return None  # fitted against a since-dropped object
            population = catalog._populations[pop_name]
            sample = catalog._samples[sample_name]
            if stamp != current_stamp(population, sample):
                self.stats["stale_models_skipped"] += 1
                return None
            return {
                "cache": cache_name,
                "population": pop_name,
                "sample": sample_name,
                "sample_version": sample.version,
                "pop_metadata_version": population.metadata_version,
                "gp": None if gp is None else (gp.name, gp.metadata_version),
                "factory": factory,
                "value": value,
            }

        for key, stamp, value in engine._reweight_cache.snapshot():
            if not (isinstance(key, tuple) and len(key) == 2):
                continue
            entry = named_entry("reweights", key[0], key[1], stamp, value)
            if entry is not None:
                entries.append(entry)
        for key, stamp, value in engine._open_generators.snapshot():
            if not (isinstance(key, tuple) and len(key) == 3):
                continue
            entry = named_entry(
                "generators", key[0], key[1], stamp, value, factory=key[2]
            )
            if entry is not None:
                entries.append(entry)

        durable: list[dict] = []
        for entry in entries:
            try:
                pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                # Lambdas as factories, models holding open resources, ...:
                # persistence is best-effort, a skipped model just refits.
                self.stats["unpicklable_skipped"] += 1
                continue
            durable.append(entry)
        return durable

    def _restore_models(self, engine, entries: list[dict]) -> None:
        catalog = engine.catalog
        gp = catalog.global_population
        gp_now = None if gp is None else (gp.name, gp.metadata_version)
        restored = 0
        for entry in entries:
            population = catalog._populations.get(entry["population"])
            sample = catalog._samples.get(entry["sample"])
            if population is None or sample is None:
                continue
            if (
                sample.version != entry["sample_version"]
                or population.metadata_version != entry["pop_metadata_version"]
                or gp_now != entry["gp"]
            ):
                self.stats["stale_models_skipped"] += 1
                continue
            stamp = (
                sample.version,
                population.metadata_version,
                None if gp is None else (gp.uid, gp.metadata_version),
            )
            if entry["cache"] == "reweights":
                engine._reweight_cache.put(
                    (population.uid, sample.uid), stamp, entry["value"]
                )
            else:
                engine._open_generators.put(
                    (population.uid, sample.uid, entry["factory"]),
                    stamp,
                    entry["value"],
                )
            restored += 1
        self.stats["restored_models"] += restored

    # ------------------------------------------------------------------ #
    # Rollback + lifecycle
    # ------------------------------------------------------------------ #

    def rollback(self, engine) -> dict:
        """Discard every uncommitted mutation: back to the last checkpoint.

        The WAL tail is dropped, the catalog is rebuilt from the live
        checkpoint's pages (an empty catalog when none exists yet), and
        the model caches are reset to the checkpoint's persisted models.
        Caller holds the engine write lock.
        """
        if self._closed:
            raise StorageError("durable store is closed")
        discarded = self._wal.size()
        self._wal.truncate()
        engine._reweight_cache.clear()
        engine._open_generators.clear()
        if self._current is None:
            engine.catalog = Catalog()
            return {"checkpoint": None, "discarded_wal_bytes": discarded}
        # Re-reading the checkpoint keeps pages mmapped from a directory
        # that is never deleted while this process lives.
        self._boot_checkpoint = self._current
        _, models = self._load_checkpoint(engine, self._current)
        self._restore_models(engine, models)
        return {"checkpoint": self._current, "discarded_wal_bytes": discarded}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._wal.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def stats_snapshot(self) -> dict:
        snapshot = dict(self.stats)
        snapshot["wal_bytes"] = self.wal_size()
        snapshot["checkpoint"] = self._current or ""
        snapshot["restore_ms"] = round(float(snapshot["restore_ms"]), 3)
        return snapshot
