"""The on-disk columnar page format: mmap-able, layout-identical to shm.

One page file holds one relation's *storage form* — exactly the byte
layout :func:`repro.relational.shm.share_relation` places in a shared
segment: each numeric column (and each TEXT column's ``int32`` dictionary
codes) as a raw little-endian buffer starting on a 64-byte boundary, plus
optional extra side arrays (sample weights).  A small JSON header up
front records the schema, each slot's dtype/offset, and every TEXT
column's vocabulary.

Because the payload mirrors the in-memory layout, *reopening is O(1) in
rows*: read the header, ``mmap`` the file once, and wrap read-only
``np.ndarray`` views over the mapping — no deserialization pass, no row
materialisation.  TEXT object columns stay lazy behind the same
``vocab[codes]`` gather the shm attach path uses.  The resulting
:class:`MappedRelation` carries its own
:class:`~repro.relational.shm.RelationDescriptor`, which is how the
morsel worker pool attaches the *file* directly (zero-copy scans) instead
of copying the relation into ``/dev/shm``.

File layout::

    [0:8)    magic  b"MOSAICPG"
    [8:12)   format version (u32 LE)
    [12:16)  header length H (u32 LE)
    [16:16+H) JSON header (utf-8)
    ...      zero padding to the 64-byte-aligned data start
    payload  slot buffers, offsets in the header are *relative to the
             data start* (so absolute offsets stay 64-byte aligned)

Writes are atomic: temp file in the same directory, flushed and fsynced,
then ``os.replace`` onto the final name — a reader never observes a
half-written page.
"""

from __future__ import annotations

import json
import os
import struct
from typing import Mapping

import numpy as np

from repro.errors import MosaicError
from repro.relational.relation import Relation
from repro.relational.shm import (
    _ALIGNMENT,
    ColumnSlot,
    ExtraSlot,
    RelationDescriptor,
    _storage_arrays,
    attach_relation,
)

PAGE_MAGIC = b"MOSAICPG"
PAGE_VERSION = 1

_PREFIX = struct.Struct("<II")  # format version, header length


class PageFormatError(MosaicError):
    """A page file is missing, truncated, or structurally invalid."""


def _align(offset: int) -> int:
    return -(-offset // _ALIGNMENT) * _ALIGNMENT


class MappedRelation(Relation):
    """A relation whose columns are read-only views over a mapped page file.

    Behaves exactly like any :class:`Relation` (transformations return
    plain relations); the extra slots only (a) keep the file mapping alive
    for the lifetime of the views and (b) expose ``mmap_descriptor``, the
    marker :class:`~repro.relational.shm.SharedRelationStore` uses to
    serve workers the page file itself instead of a ``/dev/shm`` copy.
    """

    __slots__ = ("mmap_descriptor", "_attached")

    @classmethod
    def _adopt(cls, relation: Relation, descriptor: RelationDescriptor, attached) -> "MappedRelation":
        mapped = cls.__new__(cls)
        mapped._schema = relation._schema
        mapped._columns = relation._columns
        mapped._nrows = relation._nrows
        mapped._dictionaries = relation._dictionaries
        mapped._encodings = relation._encodings
        mapped.mmap_descriptor = descriptor
        mapped._attached = attached  # owns the mapping; views reference its buffer
        return mapped


def write_page(path: str | os.PathLike, relation: Relation, extras: Mapping[str, np.ndarray] | None = None) -> int:
    """Write ``relation`` (+ side arrays) to ``path`` atomically.

    Returns the file size in bytes.  Layout order and alignment are the
    shared-memory layout's (``_storage_arrays`` + 64-byte slot rounding),
    so a page round-trips bit-identically through either attach path.
    """
    payloads, extra_payloads = _storage_arrays(relation, extras)
    for name, array in extra_payloads:
        if array.dtype == object:
            raise PageFormatError(f"extra array {name!r} must be numeric")
        if array.shape[0] != relation.num_rows:
            raise PageFormatError(
                f"extra array {name!r} has {array.shape[0]} rows, relation has "
                f"{relation.num_rows}"
            )

    offset = 0
    columns: list[dict] = []
    extra_slots: list[dict] = []
    placed: list[tuple[int, np.ndarray]] = []
    for name, logical, array, vocab in payloads:
        offset = _align(offset)
        columns.append(
            {
                "name": name,
                "logical": logical,
                "dtype": array.dtype.str,
                "offset": offset,
                "vocab": None if vocab is None else list(vocab),
            }
        )
        placed.append((offset, array))
        offset += array.nbytes
    for name, array in extra_payloads:
        offset = _align(offset)
        extra_slots.append({"name": name, "dtype": array.dtype.str, "offset": offset})
        placed.append((offset, array))
        offset += array.nbytes

    header = json.dumps(
        {
            "num_rows": relation.num_rows,
            "columns": columns,
            "extras": extra_slots,
        },
        ensure_ascii=False,
    ).encode("utf-8")
    data_start = _align(len(PAGE_MAGIC) + _PREFIX.size + len(header))

    path = os.fspath(path)
    temp = f"{path}.tmp.{os.getpid()}"
    with open(temp, "wb") as handle:
        handle.write(PAGE_MAGIC)
        handle.write(_PREFIX.pack(PAGE_VERSION, len(header)))
        handle.write(header)
        handle.write(b"\x00" * (data_start - len(PAGE_MAGIC) - _PREFIX.size - len(header)))
        position = data_start
        for slot_offset, array in placed:
            target = data_start + slot_offset
            if target > position:
                handle.write(b"\x00" * (target - position))
                position = target
            data = array.tobytes()  # C-contiguous little-endian bytes
            handle.write(data)
            position += len(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    return position


def read_descriptor(path: str | os.PathLike) -> RelationDescriptor:
    """Parse a page header into an attachable descriptor (absolute offsets).

    O(header): no payload bytes are read.  Raises
    :class:`PageFormatError` on any structural problem (missing file,
    truncated header, wrong magic, payload shorter than the slots claim) —
    the checkpoint loader treats that as a corrupt checkpoint.
    """
    path = os.path.abspath(os.fspath(path))
    try:
        size = os.path.getsize(path)
        with open(path, "rb") as handle:
            magic = handle.read(len(PAGE_MAGIC))
            if magic != PAGE_MAGIC:
                raise PageFormatError(f"{path}: not a mosaic page (bad magic)")
            prefix = handle.read(_PREFIX.size)
            if len(prefix) != _PREFIX.size:
                raise PageFormatError(f"{path}: truncated page prefix")
            version, header_length = _PREFIX.unpack(prefix)
            if version != PAGE_VERSION:
                raise PageFormatError(f"{path}: unsupported page version {version}")
            header_bytes = handle.read(header_length)
            if len(header_bytes) != header_length:
                raise PageFormatError(f"{path}: truncated page header")
    except OSError as exc:
        raise PageFormatError(f"cannot read page {path}: {exc}") from exc
    try:
        header = json.loads(header_bytes.decode("utf-8"))
        num_rows = int(header["num_rows"])
        data_start = _align(len(PAGE_MAGIC) + _PREFIX.size + header_length)
        columns = tuple(
            ColumnSlot(
                name=slot["name"],
                logical=slot["logical"],
                dtype=slot["dtype"],
                offset=data_start + int(slot["offset"]),
                vocab=None if slot["vocab"] is None else tuple(slot["vocab"]),
            )
            for slot in header["columns"]
        )
        extras = tuple(
            ExtraSlot(
                name=slot["name"],
                dtype=slot["dtype"],
                offset=data_start + int(slot["offset"]),
            )
            for slot in header["extras"]
        )
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise PageFormatError(f"{path}: malformed page header ({exc})") from exc
    for slot in (*columns, *extras):
        end = slot.offset + num_rows * np.dtype(slot.dtype).itemsize
        if end > size:
            raise PageFormatError(
                f"{path}: slot {slot.name!r} claims bytes up to {end}, file has {size}"
            )
    return RelationDescriptor(
        segment=f"file:{path}",
        num_rows=num_rows,
        columns=columns,
        extras=extras,
        path=path,
    )


def open_page(path: str | os.PathLike) -> tuple[MappedRelation, dict[str, np.ndarray]]:
    """Map a page file and rebuild its relation (+extras) over the mapping.

    Constant-time in rows: the only work proportional to anything is the
    header parse (proportional to column count and vocab size).  Columns
    are read-only views over the mapping; TEXT object columns gather
    lazily.  The returned extras (e.g. the ``__weights__`` side array) are
    read-only views too — callers that mutate must replace, never write
    in place, which is already the catalog-wide contract.
    """
    descriptor = read_descriptor(path)
    attached = attach_relation(descriptor)
    relation = MappedRelation._adopt(attached.relation, descriptor, attached)
    return relation, attached.extras
