"""Themis-style Bayesian-network population model (paper Sec. 4.1/4.2).

The paper's prior system Themis [42] pairs IPF with a Bayesian network
that "represent[s] the population probability distribution"; Sec. 4.2 notes
that with an explicit model like a BN, ``COUNT(*)`` queries can be answered
*by inference, without materialising tuples*, while group-by/top-k need a
materialised sample.  This subpackage provides both capabilities:

- :mod:`repro.bayesnet.structure` — Chow-Liu tree structure learning
  (maximum spanning tree over pairwise mutual information, computed from
  weighted sample counts), built on networkx.
- :mod:`repro.bayesnet.cpd` — conditional probability tables with Laplace
  smoothing.
- :mod:`repro.bayesnet.model` — fit / exact-COUNT inference / ancestral
  sampling, plus the marginal-calibration step that fits the BN to
  population marginals rather than the biased sample alone.
"""

from repro.bayesnet.model import BayesianNetworkModel

__all__ = ["BayesianNetworkModel"]
