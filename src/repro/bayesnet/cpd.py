"""Conditional probability tables with Laplace smoothing."""

from __future__ import annotations

import numpy as np

from repro.errors import GenerativeModelError


class RootTable:
    """``P(X)`` for the tree root."""

    def __init__(self, codes: np.ndarray, domain_size: int, weights: np.ndarray, alpha: float):
        counts = np.zeros(domain_size)
        np.add.at(counts, codes, weights)
        smoothed = counts + alpha
        total = smoothed.sum()
        if total <= 0:
            raise GenerativeModelError("root CPT has zero total mass")
        self.probabilities = smoothed / total

    def __getitem__(self, value_code: int) -> float:
        return float(self.probabilities[value_code])


class ConditionalTable:
    """``P(child | parent)`` as a (|parent|, |child|) row-stochastic matrix.

    Laplace smoothing ``alpha`` keeps unseen parent values usable: a parent
    value with no sample mass falls back to the uniform distribution.
    """

    def __init__(
        self,
        child_codes: np.ndarray,
        parent_codes: np.ndarray,
        child_size: int,
        parent_size: int,
        weights: np.ndarray,
        alpha: float,
    ):
        counts = np.zeros((parent_size, child_size))
        np.add.at(counts, (parent_codes, child_codes), weights)
        smoothed = counts + alpha
        totals = smoothed.sum(axis=1, keepdims=True)
        zero_rows = totals[:, 0] <= 0
        if np.any(zero_rows):
            smoothed[zero_rows] = 1.0
            totals = smoothed.sum(axis=1, keepdims=True)
        self.probabilities = smoothed / totals

    def row(self, parent_code: int) -> np.ndarray:
        return self.probabilities[parent_code]
