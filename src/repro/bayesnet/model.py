"""The Bayesian-network population model: fit, infer, sample.

Pipeline (Themis-style):

1. (optional) IPF-rake the sample weights against the population
   marginals, so everything downstream reflects the debiased mass.
2. Discretise: categoricals keep their domains (extended with marginal
   values); numerics get equal-width bins covering sample ∪ marginal
   ranges.
3. Learn a Chow-Liu tree from the weighted codes and fit smoothed CPTs.
4. Answer ``expected_count`` queries by exact message passing on the tree
   (no tuple materialisation — the paper's Sec. 4.2 "COUNT(*) ... using
   direct inference over the network"), or draw synthetic tuples by
   ancestral sampling for group-by / top-k queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bayesnet.cpd import ConditionalTable, RootTable
from repro.bayesnet.structure import TreeStructure, learn_chow_liu
from repro.catalog.metadata import Marginal
from repro.errors import GenerativeModelError
from repro.generative.streams import repetition_streams, with_repetition_ids
from repro.relational.dtypes import DType, object_array
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.reweight.contingency import Binner
from repro.reweight.ipf import ipf_reweight


@dataclass(frozen=True)
class AttributeModel:
    """Discretisation of one attribute.

    ``kind`` is ``"categorical"`` (explicit domain) or ``"binned"``
    (equal-width bins of a numeric column).  ``representatives`` holds the
    value used to evaluate predicates / decode samples per code: the
    category itself, or the bin midpoint.
    """

    name: str
    dtype: DType
    kind: str
    representatives: tuple
    binner: Binner | None = None

    @property
    def domain_size(self) -> int:
        return len(self.representatives)


class BayesianNetworkModel:
    """A tree-structured generative population model.

    Satisfies the engine's OPEN-generator protocol
    (``fit(sample, marginals, sample_weights=None)`` / ``generate(n, rng)``)
    and additionally supports :meth:`expected_count` — aggregate answering
    without materialisation.
    """

    def __init__(
        self,
        bins: int = 20,
        alpha: float = 0.1,
        max_categorical_int_values: int = 30,
        seed: int = 0,
    ):
        self.bins = bins
        self.alpha = alpha
        self.max_categorical_int_values = max_categorical_int_values
        self._rng = np.random.default_rng(seed)
        self.structure: TreeStructure | None = None
        self.attributes: dict[str, AttributeModel] = {}
        self.population_size: float = 0.0
        self._root_table: RootTable | None = None
        self._cpds: dict[str, ConditionalTable] = {}
        self._schema = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #

    def fit(
        self,
        sample: Relation,
        marginals: list[Marginal],
        sample_weights: np.ndarray | None = None,
        categorical_columns: set[str] | None = None,
    ) -> "BayesianNetworkModel":
        if sample.num_rows == 0:
            raise GenerativeModelError("cannot fit a Bayesian network on an empty sample")
        self._schema = sample.schema

        self.attributes = self._discretize(sample, marginals, categorical_columns or set())
        codes = {
            name: self._encode_column(sample, model)
            for name, model in self.attributes.items()
        }

        if sample_weights is None:
            if marginals:
                # Rake on the *discretised* view: continuous marginal cells
                # only match sample tuples at the bin level.
                discrete_relation = self._discrete_relation(codes, sample.num_rows)
                discrete_marginals = [self._discretize_marginal(m) for m in marginals]
                sample_weights = ipf_reweight(
                    discrete_relation, discrete_marginals
                ).weights
            else:
                sample_weights = np.ones(sample.num_rows)
        else:
            sample_weights = np.asarray(sample_weights, dtype=np.float64)

        alive = sample_weights > 0
        if not np.any(alive):
            raise GenerativeModelError("all sample weights are zero after raking")

        if marginals:
            totals = sorted(m.total_mass for m in marginals)
            mid = len(totals) // 2
            self.population_size = (
                totals[mid]
                if len(totals) % 2
                else 0.5 * (totals[mid - 1] + totals[mid])
            )
        else:
            self.population_size = float(np.sum(sample_weights))
        domain_sizes = {name: model.domain_size for name, model in self.attributes.items()}
        self.structure = learn_chow_liu(codes, domain_sizes, sample_weights)

        root = self.structure.root
        self._root_table = RootTable(
            codes[root], domain_sizes[root], sample_weights, self.alpha
        )
        self._cpds = {}
        for child, parent in self.structure.parents.items():
            if parent is None:
                continue
            self._cpds[child] = ConditionalTable(
                codes[child],
                codes[parent],
                domain_sizes[child],
                domain_sizes[parent],
                sample_weights,
                self.alpha,
            )
        if marginals:
            self.calibrate_to_marginals(marginals)
        return self

    # ------------------------------------------------------------------ #
    # Marginal calibration (tree-structured IPF)
    # ------------------------------------------------------------------ #

    def calibrate_to_marginals(
        self,
        marginals: list[Marginal],
        rounds: int = 30,
        tolerance: float = 1e-9,
    ) -> None:
        """Rescale the CPTs so the model's attribute marginals match metadata.

        Raked sample weights cannot put mass on attribute values the sample
        never contains (the migrants sample has zero non-Yahoo tuples), but
        the metadata says those values exist.  This step runs IPF directly
        on the tree distribution: per attribute, compare the model-implied
        marginal against the metadata's 1-D projection and scale that
        attribute's CPT (root vector, or conditional columns) by
        ``target / implied``, iterating to a fixed point.  Laplace smoothing
        guarantees the scaled cells start nonzero.
        """
        assert self.structure is not None and self._root_table is not None
        targets: dict[str, np.ndarray] = {}
        for marginal in marginals:
            for attribute in marginal.attributes:
                if attribute in targets:
                    continue
                target = self._target_vector(marginal.project(attribute), attribute)
                if target is not None:
                    targets[attribute] = target
        if not targets:
            return

        for _ in range(rounds):
            worst = 0.0
            for attribute, target in targets.items():
                implied = self._implied_marginal(attribute)
                positive = (implied > 0) & (target > 0)
                factor = np.ones_like(implied)
                factor[positive] = target[positive] / implied[positive]
                factor[target <= 0] = 0.0
                worst = max(worst, float(np.max(np.abs(factor - 1.0))))
                self._scale_attribute(attribute, factor)
            if worst <= tolerance:
                break

    def _target_vector(self, marginal: Marginal, attribute: str) -> np.ndarray | None:
        """The metadata marginal as a probability vector over codes."""
        model = self.attributes[attribute]
        masses = np.zeros(model.domain_size)
        cell_masses = np.asarray(
            [mass for _, mass in marginal.cells()], dtype=np.float64
        )
        if model.kind == "categorical":
            index = {value: i for i, value in enumerate(model.representatives)}
            positions = [index.get(_native(key[0])) for key in marginal.keys()]
            if any(position is None for position in positions):
                return None  # domain mismatch; leave uncalibrated
            codes = np.asarray(positions, dtype=np.int64)
        else:
            assert model.binner is not None
            values = np.asarray(
                [float(key[0]) for key in marginal.keys()], dtype=np.float64
            )
            codes = model.binner.assign(values)
        np.add.at(masses, codes, cell_masses)
        total = masses.sum()
        if total <= 0:
            return None
        return masses / total

    def _implied_marginal(self, attribute: str) -> np.ndarray:
        """P(attribute) under the current tree, by a top-down pass."""
        assert self.structure is not None and self._root_table is not None
        node_marginals: dict[str, np.ndarray] = {
            self.structure.root: self._root_table.probabilities
        }
        for node in self.structure.order[1:]:
            parent = self.structure.parents[node]
            assert parent is not None
            node_marginals[node] = (
                node_marginals[parent] @ self._cpds[node].probabilities
            )
        return node_marginals[attribute]

    def _scale_attribute(self, attribute: str, factor: np.ndarray) -> None:
        assert self.structure is not None and self._root_table is not None
        if attribute == self.structure.root:
            scaled = self._root_table.probabilities * factor
            total = scaled.sum()
            if total > 0:
                self._root_table.probabilities = scaled / total
            return
        table = self._cpds[attribute].probabilities * factor[None, :]
        totals = table.sum(axis=1, keepdims=True)
        zero_rows = totals[:, 0] <= 0
        if np.any(zero_rows):
            table[zero_rows] = 1.0 / table.shape[1]
            totals = table.sum(axis=1, keepdims=True)
        self._cpds[attribute].probabilities = table / totals

    def _discretize(
        self,
        sample: Relation,
        marginals: list[Marginal],
        categorical_columns: set[str],
    ) -> dict[str, AttributeModel]:
        marginal_values: dict[str, list] = {}
        for marginal in marginals:
            for axis, attribute in enumerate(marginal.attributes):
                marginal_values.setdefault(attribute, []).extend(
                    key[axis] for key in marginal.keys()
                )

        attributes: dict[str, AttributeModel] = {}
        for field in sample.schema:
            values = sample.column(field.name)
            extras = marginal_values.get(field.name, [])
            treat_categorical = (
                field.dtype in (DType.TEXT, DType.BOOL)
                or field.name in categorical_columns
            )
            if not treat_categorical and field.dtype is DType.INT:
                distinct = set(np.unique(values).tolist()) | {
                    int(v) for v in extras
                }
                if len(distinct) <= self.max_categorical_int_values:
                    treat_categorical = True
            if treat_categorical:
                domain = sorted(
                    {_native(v) for v in values} | {_native(v) for v in extras},
                    key=str,
                )
                attributes[field.name] = AttributeModel(
                    name=field.name,
                    dtype=field.dtype,
                    kind="categorical",
                    representatives=tuple(domain),
                )
            else:
                numeric = np.concatenate(
                    [
                        np.asarray(values, dtype=np.float64),
                        np.asarray([float(v) for v in extras], dtype=np.float64),
                    ]
                )
                binner = Binner.fit(numeric, self.bins)
                attributes[field.name] = AttributeModel(
                    name=field.name,
                    dtype=field.dtype,
                    kind="binned",
                    representatives=tuple(binner.midpoints().tolist()),
                    binner=binner,
                )
        return attributes

    def _discrete_relation(self, codes: dict[str, np.ndarray], n: int) -> Relation:
        """The sample with every attribute replaced by its representative.

        Built born-encoded: TEXT categoricals hand their (sorted, distinct)
        representative tuple straight to :meth:`Relation.from_codes` as the
        dictionary vocabulary, so the downstream IPF rake reads memoized
        codes instead of re-factorizing; other attributes gather their
        representative arrays in one vectorized take.
        """
        fields: list[Field] = []
        encoded: dict[str, tuple] = {}
        plain: dict[str, object] = {}
        for name, model in self.attributes.items():
            if model.kind == "binned":
                fields.append(Field(name, DType.FLOAT))
                plain[name] = np.asarray(model.representatives, dtype=np.float64)[
                    codes[name]
                ]
            elif _text_vocabulary(model) is not None:
                fields.append(Field(name, DType.TEXT))
                encoded[name] = (model.representatives, codes[name])
            else:
                fields.append(Field(name, model.dtype))
                plain[name] = _representative_array(model)[codes[name]]
        return Relation.from_codes(Schema(fields), encoded, plain)

    def _discretize_marginal(self, marginal: Marginal) -> Marginal:
        """Remap marginal cell keys onto representatives (bins collapse).

        Binned axes assign all cell values in one vectorized pass instead
        of one :meth:`Binner.assign` call per cell.
        """
        models = [self.attributes[a] for a in marginal.attributes]
        keys = list(marginal.keys())
        mapped_axes: list[list] = []
        for axis, model in enumerate(models):
            if model.kind == "binned":
                assert model.binner is not None
                values = np.asarray(
                    [float(key[axis]) for key in keys], dtype=np.float64
                )
                axis_codes = model.binner.assign(values)
                representatives = np.asarray(model.representatives, dtype=np.float64)
                mapped_axes.append(representatives[axis_codes].tolist())
            else:
                mapped_axes.append([_native(key[axis]) for key in keys])
        cells: dict[tuple, float] = {}
        for position, (_, mass) in enumerate(marginal.cells()):
            mapped_key = tuple(axis[position] for axis in mapped_axes)
            cells[mapped_key] = cells.get(mapped_key, 0.0) + mass
        return Marginal(list(marginal.attributes), cells, name=f"{marginal.name}|binned")

    def _encode_column(self, relation: Relation, model: AttributeModel) -> np.ndarray:
        """Per-row discrete codes, remapped from the memoized dictionary.

        Only the relation's (small) distinct value set is looked up in
        Python; the per-row remap is one vectorized gather.
        """
        if model.kind == "binned":
            assert model.binner is not None
            values = relation.column(model.name)
            return model.binner.assign(np.asarray(values, dtype=np.float64))
        index = {value: i for i, value in enumerate(model.representatives)}
        uniques, codes = relation.dictionary(model.name)
        remap = np.asarray([index[_native(v)] for v in uniques], dtype=np.int64)
        return remap[codes]

    # ------------------------------------------------------------------ #
    # Exact inference
    # ------------------------------------------------------------------ #

    def probability(self, constraints: dict[str, Callable[[object], bool]]) -> float:
        """``P(⋀_i  pred_i(A_i))`` by message passing on the tree.

        Each constraint is a Python predicate evaluated over the
        attribute's discrete representatives (category values / bin
        midpoints).  Attributes without a constraint are unconstrained.
        """
        if self.structure is None or self._root_table is None:
            raise GenerativeModelError("probability() before fit()")
        for name in constraints:
            if name not in self.attributes:
                raise GenerativeModelError(f"unknown attribute {name!r} in constraint")

        masks = {
            name: self._constraint_mask(model, constraints.get(name))
            for name, model in self.attributes.items()
        }

        def upward(node: str) -> np.ndarray:
            """Message to the parent: per parent-less code, the probability of
            the constrained subtree below (and including) ``node``."""
            mask = masks[node].astype(np.float64)
            product = mask.copy()
            for child in self.structure.children(node):
                product = product * upward_through_cpd(child)
            return product

        def upward_through_cpd(child: str) -> np.ndarray:
            child_vector = upward(child)
            return self._cpds[child].probabilities @ child_vector

        root = self.structure.root
        root_vector = upward(root)
        return float(np.dot(self._root_table.probabilities, root_vector))

    def expected_count(self, constraints: dict[str, Callable[[object], bool]]) -> float:
        """Estimated ``COUNT(*)`` of population tuples matching the constraints."""
        return self.population_size * self.probability(constraints)

    @staticmethod
    def _constraint_mask(
        model: AttributeModel, predicate: Callable[[object], bool] | None
    ) -> np.ndarray:
        if predicate is None:
            return np.ones(model.domain_size, dtype=bool)
        return np.asarray(
            [bool(predicate(value)) for value in model.representatives], dtype=bool
        )

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def generate(self, n: int, rng: np.random.Generator | None = None) -> Relation:
        """Draw ``n`` synthetic tuples by ancestral sampling.

        Binned attributes decode uniformly within their bin (rounded for
        INT columns), categoricals decode to their category value.

        Every draw is a deterministic inverse-CDF transform of uniforms
        consumed in a fixed order (root, tree order, then one decode
        uniform per binned attribute), so stacking the uniforms of several
        repetitions and transforming them in one pass —
        :meth:`generate_batch` — is bit-identical to repeated calls.
        """
        self._require_fitted()
        if n <= 0:
            raise GenerativeModelError(f"need a positive sample size, got {n}")
        rng = rng if rng is not None else self._rng
        node_uniforms, decode_uniforms = self._draw_uniforms(n, rng)
        codes = self._ancestral_codes(node_uniforms)
        return self._decode_codes(codes, decode_uniforms)

    def generate_batch(
        self, n: int, repetitions: int, rng: np.random.Generator | None = None
    ) -> Relation:
        """``repetitions`` independent samples of ``n`` rows in one pass.

        Draws each repetition's uniforms from its own spawned RNG stream
        (the OPEN per-repetition stream contract), stacks them, and runs
        ancestral sampling over the stacked code matrices once.  The
        result is the serial per-repetition output concatenated, tagged
        with a dense ``__rep__`` id column.
        """
        streams = repetition_streams(
            rng if rng is not None else self._rng, repetitions
        )
        return self.generate_batch_streams(n, streams)

    def generate_batch_streams(
        self, n: int, streams: list[np.random.Generator]
    ) -> Relation:
        """One chunk of repetitions, each drawn from its given stream.

        The chunked sibling of :meth:`generate_batch`: callers slice a
        pre-spawned stream list, so chunked generation draws exactly what
        the monolithic batch would for the same repetition indices.
        """
        self._require_fitted()
        if n <= 0:
            raise GenerativeModelError(f"need a positive sample size, got {n}")
        if not streams:
            raise GenerativeModelError("need at least one repetition stream")
        node_names, decode_names = self._uniform_layout()
        total = n * len(streams)
        node_uniforms = {name: np.empty(total) for name in node_names}
        decode_uniforms = {name: np.empty(total) for name in decode_names}
        for index, stream in enumerate(streams):
            # Fill each repetition's slice in the exact order generate()
            # consumes its stream, so the slices are bit-identical to the
            # serial loop's draws.
            lo, hi = index * n, (index + 1) * n
            for name in node_names:
                stream.random(out=node_uniforms[name][lo:hi])
            for name in decode_names:
                stream.random(out=decode_uniforms[name][lo:hi])
        codes = self._ancestral_codes(node_uniforms)
        return with_repetition_ids(
            self._decode_codes(codes, decode_uniforms), len(streams)
        )

    def generate_many(
        self, n: int, repetitions: int, rng: np.random.Generator | None = None
    ) -> list[Relation]:
        rng = rng if rng is not None else self._rng
        return [self.generate(n, rng=rng) for _ in range(repetitions)]

    def _require_fitted(self) -> None:
        if self.structure is None or self._root_table is None or self._schema is None:
            raise GenerativeModelError("generate() before fit()")

    def _uniform_layout(self) -> tuple[list[str], list[str]]:
        """The fixed order generation consumes uniforms in: tree order for
        ancestral draws, attribute order for binned decode draws."""
        assert self.structure is not None
        return (
            list(self.structure.order),
            [
                name
                for name, model in self.attributes.items()
                if model.kind == "binned"
            ],
        )

    def _draw_uniforms(
        self, n: int, rng: np.random.Generator
    ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        """All randomness of one generation round, in consumption order."""
        node_names, decode_names = self._uniform_layout()
        node_uniforms = {node: rng.random(n) for node in node_names}
        decode_uniforms = {name: rng.random(n) for name in decode_names}
        return node_uniforms, decode_uniforms

    def _ancestral_codes(
        self, node_uniforms: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """Inverse-CDF ancestral sampling over stacked code matrices.

        The root inverts its CDF with one ``searchsorted``.  Each child
        also uses a *single* ``searchsorted`` for all rows at once: the
        per-parent conditional CDFs are laid out consecutively with offset
        ``parent`` (every CDF lives in ``[0, 1]``, so ``parent + cdf`` is
        globally non-decreasing) and row queries become
        ``parent_code + uniform`` — no per-row gather, no sort, no
        per-parent loop.  A row's code is a pure function of its own
        uniform and its parent's code, so the result is independent of how
        rows are batched.
        """
        assert self.structure is not None and self._root_table is not None
        codes: dict[str, np.ndarray] = {}
        root = self.structure.root
        root_cdf = np.cumsum(self._root_table.probabilities)
        codes[root] = np.minimum(
            _count_entries_below(root_cdf, node_uniforms[root], span=1),
            self.attributes[root].domain_size - 1,
        )
        for node in self.structure.order[1:]:
            parent = self.structure.parents[node]
            assert parent is not None
            cdf = np.cumsum(self._cpds[node].probabilities, axis=1)
            num_parents, domain = cdf.shape
            flat_cdf = (cdf + np.arange(num_parents)[:, None]).ravel()
            parent_codes = codes[parent]
            queries = parent_codes + node_uniforms[node]
            drawn = (
                _count_entries_below(flat_cdf, queries, span=num_parents)
                - parent_codes * domain
            )
            # Both clips guard float edges of the CDF: a row cumsum ending
            # below 1 can overshoot the top; one ending above 1 can leak a
            # count into the next parent's block and undershoot to -1.
            codes[node] = np.clip(drawn, 0, domain - 1)
        return codes

    def _decode_codes(
        self,
        codes: dict[str, np.ndarray],
        decode_uniforms: dict[str, np.ndarray],
    ) -> Relation:
        """Codes → tuples, born dictionary-encoded for TEXT categoricals.

        TEXT categorical domains are sorted and distinct — exactly a
        dictionary vocabulary — so the sampled codes go straight into
        :meth:`Relation.from_codes` with no per-row Python materialisation;
        other categoricals gather their representative arrays, and binned
        attributes decode uniformly within their bin.
        """
        assert self._schema is not None
        plain: dict[str, object] = {}
        encoded: dict[str, tuple] = {}
        for name, model in self.attributes.items():
            attr_codes = codes[name]
            if model.kind == "categorical":
                vocabulary = _text_vocabulary(model)
                if vocabulary is not None:
                    encoded[name] = (vocabulary, attr_codes)
                else:
                    plain[name] = _representative_array(model)[attr_codes]
            else:
                assert model.binner is not None
                width = (model.binner.high - model.binner.low) / model.binner.bins
                low_edges = model.binner.low + attr_codes * width
                values = low_edges + decode_uniforms[name] * width
                if model.dtype is DType.INT:
                    values = np.round(values)
                plain[name] = values
        return Relation.from_codes(self._schema, encoded, plain)


#: Inverse-CDF quantisation: slots per unit interval.  Higher = fewer rows
#: falling back to binary search, at the cost of a larger (still tiny) LUT.
_INVERSE_CDF_SLOTS = 512


def _count_entries_below(
    flat_cdf: np.ndarray, queries: np.ndarray, span: int
) -> np.ndarray:
    """``count(flat_cdf <= q)`` per query, via a quantised lookup table.

    ``flat_cdf`` is non-decreasing over ``[0, span]``.  The unit range is
    cut into :data:`_INVERSE_CDF_SLOTS` slots and a prefix-count LUT built
    with one (sorted-query, cache-friendly) ``searchsorted``; each query
    then resolves with one gather.  Rows whose neighbouring slots contain
    a CDF jump — a bounded few percent, since each conditional row has at
    most ``domain`` jumps — fall back to an exact binary search, so the
    result equals ``searchsorted(flat_cdf, queries, side="right")``
    everywhere (the widened two-slot window also absorbs float rounding of
    the slot index).  Replaces a branch-miss-bound binary search per row
    with O(1) work for the common case.
    """
    grid_size = span * _INVERSE_CDF_SLOTS
    grid = np.arange(grid_size + 1, dtype=np.float64) / _INVERSE_CDF_SLOTS
    lut = np.searchsorted(flat_cdf, grid, side="right")
    slots = (queries * _INVERSE_CDF_SLOTS).astype(np.int64)
    np.clip(slots, 0, grid_size - 1, out=slots)
    counts = lut[slots]
    ambiguous = np.flatnonzero(lut[slots + 1] > lut[np.maximum(slots - 1, 0)])
    if ambiguous.size:
        counts[ambiguous] = np.searchsorted(
            flat_cdf, queries[ambiguous], side="right"
        )
    return counts


def _text_vocabulary(model: AttributeModel) -> tuple | None:
    """The representatives as a dictionary vocabulary, if usable as one.

    A TEXT categorical whose representatives are all ``str`` is exactly a
    vocabulary — sorted (``_discretize`` sorts by ``str``) and distinct —
    so sampled codes can go straight into :meth:`Relation.from_codes`.
    ``None`` for anything else (binned, non-TEXT, mixed-type domains).
    The single definition keeps fit-time (``_discrete_relation``) and
    generate-time (``_decode_codes``) encodability decisions in lockstep.
    """
    if (
        model.kind == "categorical"
        and model.dtype is DType.TEXT
        and all(isinstance(v, str) for v in model.representatives)
    ):
        return model.representatives
    return None


def _representative_array(model: AttributeModel) -> np.ndarray:
    """The representatives as a gatherable array, numeric where possible.

    Homogeneous numeric/bool domains produce a typed array so per-row
    gathers stay in C (coercing a 150k-element *object* array of ints back
    to int64 walks Python objects row by row); anything else falls back to
    an object array, preserving the values untouched.
    """
    kinds = {type(v) for v in model.representatives}
    if kinds == {bool}:
        return np.asarray(model.representatives, dtype=bool)
    if kinds == {int}:
        return np.asarray(model.representatives, dtype=np.int64)
    if kinds <= {int, float}:
        return np.asarray(model.representatives, dtype=np.float64)
    return object_array(model.representatives)


def _native(value):
    if isinstance(value, np.generic):
        return value.item()
    return value
