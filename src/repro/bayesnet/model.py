"""The Bayesian-network population model: fit, infer, sample.

Pipeline (Themis-style):

1. (optional) IPF-rake the sample weights against the population
   marginals, so everything downstream reflects the debiased mass.
2. Discretise: categoricals keep their domains (extended with marginal
   values); numerics get equal-width bins covering sample ∪ marginal
   ranges.
3. Learn a Chow-Liu tree from the weighted codes and fit smoothed CPTs.
4. Answer ``expected_count`` queries by exact message passing on the tree
   (no tuple materialisation — the paper's Sec. 4.2 "COUNT(*) ... using
   direct inference over the network"), or draw synthetic tuples by
   ancestral sampling for group-by / top-k queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bayesnet.cpd import ConditionalTable, RootTable
from repro.bayesnet.structure import TreeStructure, learn_chow_liu
from repro.catalog.metadata import Marginal
from repro.errors import GenerativeModelError
from repro.relational.dtypes import DType
from repro.relational.relation import Relation
from repro.reweight.contingency import Binner
from repro.reweight.ipf import ipf_reweight


@dataclass(frozen=True)
class AttributeModel:
    """Discretisation of one attribute.

    ``kind`` is ``"categorical"`` (explicit domain) or ``"binned"``
    (equal-width bins of a numeric column).  ``representatives`` holds the
    value used to evaluate predicates / decode samples per code: the
    category itself, or the bin midpoint.
    """

    name: str
    dtype: DType
    kind: str
    representatives: tuple
    binner: Binner | None = None

    @property
    def domain_size(self) -> int:
        return len(self.representatives)


class BayesianNetworkModel:
    """A tree-structured generative population model.

    Satisfies the engine's OPEN-generator protocol
    (``fit(sample, marginals, sample_weights=None)`` / ``generate(n, rng)``)
    and additionally supports :meth:`expected_count` — aggregate answering
    without materialisation.
    """

    def __init__(
        self,
        bins: int = 20,
        alpha: float = 0.1,
        max_categorical_int_values: int = 30,
        seed: int = 0,
    ):
        self.bins = bins
        self.alpha = alpha
        self.max_categorical_int_values = max_categorical_int_values
        self._rng = np.random.default_rng(seed)
        self.structure: TreeStructure | None = None
        self.attributes: dict[str, AttributeModel] = {}
        self.population_size: float = 0.0
        self._root_table: RootTable | None = None
        self._cpds: dict[str, ConditionalTable] = {}
        self._schema = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #

    def fit(
        self,
        sample: Relation,
        marginals: list[Marginal],
        sample_weights: np.ndarray | None = None,
        categorical_columns: set[str] | None = None,
    ) -> "BayesianNetworkModel":
        if sample.num_rows == 0:
            raise GenerativeModelError("cannot fit a Bayesian network on an empty sample")
        self._schema = sample.schema

        self.attributes = self._discretize(sample, marginals, categorical_columns or set())
        codes = {
            name: self._encode_column(sample, model)
            for name, model in self.attributes.items()
        }

        if sample_weights is None:
            if marginals:
                # Rake on the *discretised* view: continuous marginal cells
                # only match sample tuples at the bin level.
                discrete_relation = self._discrete_relation(codes, sample.num_rows)
                discrete_marginals = [self._discretize_marginal(m) for m in marginals]
                sample_weights = ipf_reweight(
                    discrete_relation, discrete_marginals
                ).weights
            else:
                sample_weights = np.ones(sample.num_rows)
        else:
            sample_weights = np.asarray(sample_weights, dtype=np.float64)

        alive = sample_weights > 0
        if not np.any(alive):
            raise GenerativeModelError("all sample weights are zero after raking")

        if marginals:
            totals = sorted(m.total_mass for m in marginals)
            mid = len(totals) // 2
            self.population_size = (
                totals[mid]
                if len(totals) % 2
                else 0.5 * (totals[mid - 1] + totals[mid])
            )
        else:
            self.population_size = float(np.sum(sample_weights))
        domain_sizes = {name: model.domain_size for name, model in self.attributes.items()}
        self.structure = learn_chow_liu(codes, domain_sizes, sample_weights)

        root = self.structure.root
        self._root_table = RootTable(
            codes[root], domain_sizes[root], sample_weights, self.alpha
        )
        self._cpds = {}
        for child, parent in self.structure.parents.items():
            if parent is None:
                continue
            self._cpds[child] = ConditionalTable(
                codes[child],
                codes[parent],
                domain_sizes[child],
                domain_sizes[parent],
                sample_weights,
                self.alpha,
            )
        if marginals:
            self.calibrate_to_marginals(marginals)
        return self

    # ------------------------------------------------------------------ #
    # Marginal calibration (tree-structured IPF)
    # ------------------------------------------------------------------ #

    def calibrate_to_marginals(
        self,
        marginals: list[Marginal],
        rounds: int = 30,
        tolerance: float = 1e-9,
    ) -> None:
        """Rescale the CPTs so the model's attribute marginals match metadata.

        Raked sample weights cannot put mass on attribute values the sample
        never contains (the migrants sample has zero non-Yahoo tuples), but
        the metadata says those values exist.  This step runs IPF directly
        on the tree distribution: per attribute, compare the model-implied
        marginal against the metadata's 1-D projection and scale that
        attribute's CPT (root vector, or conditional columns) by
        ``target / implied``, iterating to a fixed point.  Laplace smoothing
        guarantees the scaled cells start nonzero.
        """
        assert self.structure is not None and self._root_table is not None
        targets: dict[str, np.ndarray] = {}
        for marginal in marginals:
            for attribute in marginal.attributes:
                if attribute in targets:
                    continue
                target = self._target_vector(marginal.project(attribute), attribute)
                if target is not None:
                    targets[attribute] = target
        if not targets:
            return

        for _ in range(rounds):
            worst = 0.0
            for attribute, target in targets.items():
                implied = self._implied_marginal(attribute)
                positive = (implied > 0) & (target > 0)
                factor = np.ones_like(implied)
                factor[positive] = target[positive] / implied[positive]
                factor[target <= 0] = 0.0
                worst = max(worst, float(np.max(np.abs(factor - 1.0))))
                self._scale_attribute(attribute, factor)
            if worst <= tolerance:
                break

    def _target_vector(self, marginal: Marginal, attribute: str) -> np.ndarray | None:
        """The metadata marginal as a probability vector over codes."""
        model = self.attributes[attribute]
        masses = np.zeros(model.domain_size)
        if model.kind == "categorical":
            index = {value: i for i, value in enumerate(model.representatives)}
            for key, mass in marginal.cells():
                position = index.get(_native(key[0]))
                if position is None:
                    return None  # domain mismatch; leave uncalibrated
                masses[position] += mass
        else:
            assert model.binner is not None
            for key, mass in marginal.cells():
                code = int(model.binner.assign(np.asarray([float(key[0])]))[0])
                masses[code] += mass
        total = masses.sum()
        if total <= 0:
            return None
        return masses / total

    def _implied_marginal(self, attribute: str) -> np.ndarray:
        """P(attribute) under the current tree, by a top-down pass."""
        assert self.structure is not None and self._root_table is not None
        node_marginals: dict[str, np.ndarray] = {
            self.structure.root: self._root_table.probabilities
        }
        for node in self.structure.order[1:]:
            parent = self.structure.parents[node]
            assert parent is not None
            node_marginals[node] = (
                node_marginals[parent] @ self._cpds[node].probabilities
            )
        return node_marginals[attribute]

    def _scale_attribute(self, attribute: str, factor: np.ndarray) -> None:
        assert self.structure is not None and self._root_table is not None
        if attribute == self.structure.root:
            scaled = self._root_table.probabilities * factor
            total = scaled.sum()
            if total > 0:
                self._root_table.probabilities = scaled / total
            return
        table = self._cpds[attribute].probabilities * factor[None, :]
        totals = table.sum(axis=1, keepdims=True)
        zero_rows = totals[:, 0] <= 0
        if np.any(zero_rows):
            table[zero_rows] = 1.0 / table.shape[1]
            totals = table.sum(axis=1, keepdims=True)
        self._cpds[attribute].probabilities = table / totals

    def _discretize(
        self,
        sample: Relation,
        marginals: list[Marginal],
        categorical_columns: set[str],
    ) -> dict[str, AttributeModel]:
        marginal_values: dict[str, list] = {}
        for marginal in marginals:
            for axis, attribute in enumerate(marginal.attributes):
                marginal_values.setdefault(attribute, []).extend(
                    key[axis] for key in marginal.keys()
                )

        attributes: dict[str, AttributeModel] = {}
        for field in sample.schema:
            values = sample.column(field.name)
            extras = marginal_values.get(field.name, [])
            treat_categorical = (
                field.dtype in (DType.TEXT, DType.BOOL)
                or field.name in categorical_columns
            )
            if not treat_categorical and field.dtype is DType.INT:
                distinct = set(np.unique(values).tolist()) | {
                    int(v) for v in extras
                }
                if len(distinct) <= self.max_categorical_int_values:
                    treat_categorical = True
            if treat_categorical:
                domain = sorted(
                    {_native(v) for v in values} | {_native(v) for v in extras},
                    key=str,
                )
                attributes[field.name] = AttributeModel(
                    name=field.name,
                    dtype=field.dtype,
                    kind="categorical",
                    representatives=tuple(domain),
                )
            else:
                numeric = np.concatenate(
                    [
                        np.asarray(values, dtype=np.float64),
                        np.asarray([float(v) for v in extras], dtype=np.float64),
                    ]
                )
                binner = Binner.fit(numeric, self.bins)
                attributes[field.name] = AttributeModel(
                    name=field.name,
                    dtype=field.dtype,
                    kind="binned",
                    representatives=tuple(binner.midpoints().tolist()),
                    binner=binner,
                )
        return attributes

    def _discrete_relation(self, codes: dict[str, np.ndarray], n: int) -> Relation:
        """The sample with every attribute replaced by its representative."""
        columns: dict[str, object] = {}
        for name, model in self.attributes.items():
            columns[name] = [model.representatives[c] for c in codes[name]]
        return Relation.from_dict(columns)

    def _discretize_marginal(self, marginal: Marginal) -> Marginal:
        """Remap marginal cell keys onto representatives (bins collapse)."""
        cells: dict[tuple, float] = {}
        models = [self.attributes[a] for a in marginal.attributes]
        for key, mass in marginal.cells():
            mapped = []
            for model, value in zip(models, key):
                if model.kind == "binned":
                    assert model.binner is not None
                    code = int(model.binner.assign(np.asarray([float(value)]))[0])
                    mapped.append(model.representatives[code])
                else:
                    mapped.append(_native(value))
            mapped_key = tuple(mapped)
            cells[mapped_key] = cells.get(mapped_key, 0.0) + mass
        return Marginal(list(marginal.attributes), cells, name=f"{marginal.name}|binned")

    def _encode_column(self, relation: Relation, model: AttributeModel) -> np.ndarray:
        values = relation.column(model.name)
        if model.kind == "binned":
            assert model.binner is not None
            return model.binner.assign(np.asarray(values, dtype=np.float64))
        index = {value: i for i, value in enumerate(model.representatives)}
        return np.asarray([index[_native(v)] for v in values], dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Exact inference
    # ------------------------------------------------------------------ #

    def probability(self, constraints: dict[str, Callable[[object], bool]]) -> float:
        """``P(⋀_i  pred_i(A_i))`` by message passing on the tree.

        Each constraint is a Python predicate evaluated over the
        attribute's discrete representatives (category values / bin
        midpoints).  Attributes without a constraint are unconstrained.
        """
        if self.structure is None or self._root_table is None:
            raise GenerativeModelError("probability() before fit()")
        for name in constraints:
            if name not in self.attributes:
                raise GenerativeModelError(f"unknown attribute {name!r} in constraint")

        masks = {
            name: self._constraint_mask(model, constraints.get(name))
            for name, model in self.attributes.items()
        }

        def upward(node: str) -> np.ndarray:
            """Message to the parent: per parent-less code, the probability of
            the constrained subtree below (and including) ``node``."""
            mask = masks[node].astype(np.float64)
            product = mask.copy()
            for child in self.structure.children(node):
                product = product * upward_through_cpd(child)
            return product

        def upward_through_cpd(child: str) -> np.ndarray:
            child_vector = upward(child)
            return self._cpds[child].probabilities @ child_vector

        root = self.structure.root
        root_vector = upward(root)
        return float(np.dot(self._root_table.probabilities, root_vector))

    def expected_count(self, constraints: dict[str, Callable[[object], bool]]) -> float:
        """Estimated ``COUNT(*)`` of population tuples matching the constraints."""
        return self.population_size * self.probability(constraints)

    @staticmethod
    def _constraint_mask(
        model: AttributeModel, predicate: Callable[[object], bool] | None
    ) -> np.ndarray:
        if predicate is None:
            return np.ones(model.domain_size, dtype=bool)
        return np.asarray(
            [bool(predicate(value)) for value in model.representatives], dtype=bool
        )

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def generate(self, n: int, rng: np.random.Generator | None = None) -> Relation:
        """Draw ``n`` synthetic tuples by ancestral sampling.

        Binned attributes decode uniformly within their bin (rounded for
        INT columns), categoricals decode to their category value.
        """
        if self.structure is None or self._root_table is None or self._schema is None:
            raise GenerativeModelError("generate() before fit()")
        if n <= 0:
            raise GenerativeModelError(f"need a positive sample size, got {n}")
        rng = rng if rng is not None else self._rng

        codes: dict[str, np.ndarray] = {}
        root = self.structure.root
        codes[root] = rng.choice(
            self.attributes[root].domain_size, size=n, p=self._root_table.probabilities
        )
        for node in self.structure.order[1:]:
            parent = self.structure.parents[node]
            assert parent is not None
            table = self._cpds[node].probabilities
            parent_codes = codes[parent]
            draws = np.empty(n, dtype=np.int64)
            # Group rows by parent code so each choice() call is vectorised.
            for parent_code in np.unique(parent_codes):
                rows = np.flatnonzero(parent_codes == parent_code)
                draws[rows] = rng.choice(
                    table.shape[1], size=rows.shape[0], p=table[parent_code]
                )
            codes[node] = draws

        columns: dict[str, object] = {}
        for name, model in self.attributes.items():
            attr_codes = codes[name]
            if model.kind == "categorical":
                columns[name] = [model.representatives[c] for c in attr_codes]
            else:
                assert model.binner is not None
                width = (model.binner.high - model.binner.low) / model.binner.bins
                low_edges = model.binner.low + attr_codes * width
                values = low_edges + rng.random(n) * width
                if model.dtype is DType.INT:
                    values = np.round(values)
                columns[name] = values
        return Relation.from_columns(self._schema, columns)

    def generate_many(
        self, n: int, repetitions: int, rng: np.random.Generator | None = None
    ) -> list[Relation]:
        rng = rng if rng is not None else self._rng
        return [self.generate(n, rng=rng) for _ in range(repetitions)]


def _native(value):
    if isinstance(value, np.generic):
        return value.item()
    return value
