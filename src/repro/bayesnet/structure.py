"""Chow-Liu structure learning over weighted discrete data.

The Chow-Liu algorithm finds the tree-structured Bayesian network that
maximises the data likelihood: a maximum spanning tree of the complete
graph whose edge weights are pairwise mutual information.  Weighted counts
let the tree be learned from an IPF-raked sample, so the structure reflects
the *population* mass rather than the sampling bias.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import GenerativeModelError


@dataclass(frozen=True)
class TreeStructure:
    """A rooted tree: per-node parent (root maps to None) + topological order."""

    parents: dict[str, str | None]
    order: tuple[str, ...]  # parents before children

    @property
    def root(self) -> str:
        return self.order[0]

    def children(self, node: str) -> list[str]:
        return [child for child, parent in self.parents.items() if parent == node]


def mutual_information(
    codes_a: np.ndarray,
    codes_b: np.ndarray,
    size_a: int,
    size_b: int,
    weights: np.ndarray,
) -> float:
    """Weighted mutual information between two coded attributes (nats)."""
    joint = np.zeros((size_a, size_b))
    np.add.at(joint, (codes_a, codes_b), weights)
    total = joint.sum()
    if total <= 0:
        raise GenerativeModelError("mutual information of zero-mass data")
    joint /= total
    pa = joint.sum(axis=1)
    pb = joint.sum(axis=0)
    nonzero = joint > 0
    outer = np.outer(pa, pb)
    return float(np.sum(joint[nonzero] * np.log(joint[nonzero] / outer[nonzero])))


def learn_chow_liu(
    codes: dict[str, np.ndarray],
    domain_sizes: dict[str, int],
    weights: np.ndarray,
    root: str | None = None,
) -> TreeStructure:
    """Learn the maximum-MI spanning tree and orient it from ``root``.

    ``codes`` maps each attribute to integer value codes per row; the root
    defaults to the first attribute (insertion order).
    """
    names = list(codes)
    if not names:
        raise GenerativeModelError("cannot learn a structure over zero attributes")
    if root is None:
        root = names[0]
    if root not in codes:
        raise GenerativeModelError(f"root {root!r} is not an attribute")

    if len(names) == 1:
        return TreeStructure(parents={names[0]: None}, order=(names[0],))

    graph = nx.Graph()
    graph.add_nodes_from(names)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            mi = mutual_information(
                codes[a], codes[b], domain_sizes[a], domain_sizes[b], weights
            )
            graph.add_edge(a, b, weight=mi)

    tree = nx.maximum_spanning_tree(graph)
    parents: dict[str, str | None] = {root: None}
    order: list[str] = [root]
    for parent, child in nx.bfs_edges(tree, root):
        parents[child] = parent
        order.append(child)
    return TreeStructure(parents=parents, order=tuple(order))
