"""Uniform (simple random) sampling: ``USING MECHANISM UNIFORM PERCENT p``."""

from __future__ import annotations

import numpy as np

from repro.mechanisms.base import SamplingMechanism, sample_size, validate_percent
from repro.relational.relation import Relation


class UniformMechanism(SamplingMechanism):
    """Every population tuple included with the same probability ``p/100``."""

    def __init__(self, percent: float):
        self.percent = validate_percent(percent)

    def inclusion_probabilities(self, population: Relation) -> np.ndarray:
        return np.full(population.num_rows, self.percent / 100.0)

    def draw(self, population: Relation, rng: np.random.Generator) -> np.ndarray:
        n = sample_size(population.num_rows, self.percent)
        return rng.choice(population.num_rows, size=n, replace=False)

    def describe(self) -> str:
        return f"UNIFORM PERCENT {self.percent:g}"
