"""Custom sampling mechanisms from user-supplied inclusion probabilities."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ReweightError
from repro.relational.relation import Relation
from repro.mechanisms.base import SamplingMechanism


class CustomMechanism(SamplingMechanism):
    """Arbitrary per-tuple inclusion probabilities.

    ``probability_fn`` maps a population relation to an array of per-tuple
    inclusion probabilities in [0, 1].  Drawing is independent Bernoulli
    per tuple (Poisson sampling), which is the sampling design the
    inverse-probability estimator in the paper's reference [7] assumes.
    """

    def __init__(self, probability_fn: Callable[[Relation], np.ndarray], label: str = "CUSTOM"):
        self._probability_fn = probability_fn
        self.label = label

    def inclusion_probabilities(self, population: Relation) -> np.ndarray:
        probabilities = np.asarray(self._probability_fn(population), dtype=np.float64)
        if probabilities.shape != (population.num_rows,):
            raise ReweightError(
                "custom mechanism returned probabilities of shape "
                f"{probabilities.shape}, expected ({population.num_rows},)"
            )
        if np.any((probabilities < 0.0) | (probabilities > 1.0)):
            raise ReweightError("custom mechanism probabilities must lie in [0, 1]")
        return probabilities

    def draw(self, population: Relation, rng: np.random.Generator) -> np.ndarray:
        probabilities = self.inclusion_probabilities(population)
        mask = rng.random(population.num_rows) < probabilities
        return np.flatnonzero(mask)

    def describe(self) -> str:
        return self.label
