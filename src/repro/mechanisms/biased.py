"""Predicate-biased sampling — the paper's flights bias shape (Sec. 5.3).

The flights experiment draws "a biased 5 percent sample of flights with an
elapsed flight time of more than 200 minutes with a 95 percent bias, meaning
95 percent of the tuples have a long flight time".  Generalised: a
``percent`` sample where ``bias`` of the sampled tuples satisfy a predicate
and ``1 - bias`` do not.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReweightError
from repro.mechanisms.base import SamplingMechanism, sample_size, validate_percent
from repro.relational.expressions import Expr
from repro.relational.relation import Relation


class PredicateBiasedMechanism(SamplingMechanism):
    """``percent`` sample with ``bias`` of tuples drawn from ``predicate``.

    ``predicate`` is a boolean expression over the population schema
    (e.g. ``elapsed_time > 200``).  When a side has too few tuples to meet
    its share, the deficit shifts to the other side so the overall sample
    size is preserved.
    """

    def __init__(self, predicate: Expr, percent: float, bias: float):
        if not 0.0 <= bias <= 1.0:
            raise ReweightError(f"bias must be in [0, 1], got {bias}")
        self.predicate = predicate
        self.percent = validate_percent(percent)
        self.bias = float(bias)

    def _split(self, population: Relation) -> tuple[np.ndarray, np.ndarray, int, int]:
        mask = np.asarray(self.predicate.evaluate(population), dtype=bool)
        matching = np.flatnonzero(mask)
        rest = np.flatnonzero(~mask)
        total = sample_size(population.num_rows, self.percent)
        want_matching = int(round(total * self.bias))
        want_rest = total - want_matching
        overflow_matching = max(0, want_matching - len(matching))
        overflow_rest = max(0, want_rest - len(rest))
        want_matching = min(want_matching + overflow_rest, len(matching))
        want_rest = min(want_rest + overflow_matching, len(rest))
        return matching, rest, want_matching, want_rest

    def inclusion_probabilities(self, population: Relation) -> np.ndarray:
        matching, rest, want_matching, want_rest = self._split(population)
        probabilities = np.zeros(population.num_rows)
        if len(matching):
            probabilities[matching] = want_matching / len(matching)
        if len(rest):
            probabilities[rest] = want_rest / len(rest)
        return probabilities

    def draw(self, population: Relation, rng: np.random.Generator) -> np.ndarray:
        matching, rest, want_matching, want_rest = self._split(population)
        parts = []
        if want_matching > 0:
            parts.append(rng.choice(matching, size=want_matching, replace=False))
        if want_rest > 0:
            parts.append(rng.choice(rest, size=want_rest, replace=False))
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(parts))

    def describe(self) -> str:
        return (
            f"BIASED ON {self.predicate.to_sql()} "
            f"PERCENT {self.percent:g} BIAS {self.bias:g}"
        )
