"""Sampling mechanisms: how tuples get from a population into a sample.

The paper (Sec. 3) defines the *sampling mechanism* as the probability
``PrS(t)`` of each population tuple being included in the sample, declared
via ``USING MECHANISM <mechanism> PERCENT <perc>``.  A known mechanism
enables exact inverse-probability reweighting for SEMI-OPEN queries
(Sec. 4.1); an unknown one forces IPF against marginals.

Implemented mechanisms:

- :class:`~repro.mechanisms.uniform.UniformMechanism` — simple random sample.
- :class:`~repro.mechanisms.stratified.StratifiedMechanism` — equal
  allocation per stratum (covers rare strata; distributionally biased).
- :class:`~repro.mechanisms.biased.PredicateBiasedMechanism` — the flights
  experiment's bias shape: X % of the sample drawn from tuples matching a
  predicate (e.g. 95 % long flights).
- :class:`~repro.mechanisms.custom.CustomMechanism` — arbitrary per-tuple
  inclusion probabilities.
"""

from repro.mechanisms.base import SamplingMechanism
from repro.mechanisms.biased import PredicateBiasedMechanism
from repro.mechanisms.custom import CustomMechanism
from repro.mechanisms.stratified import StratifiedMechanism
from repro.mechanisms.uniform import UniformMechanism

__all__ = [
    "SamplingMechanism",
    "UniformMechanism",
    "StratifiedMechanism",
    "PredicateBiasedMechanism",
    "CustomMechanism",
]
