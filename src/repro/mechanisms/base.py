"""The sampling-mechanism interface."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ReweightError
from repro.relational.relation import Relation


class SamplingMechanism(ABC):
    """The probability of each population tuple entering the sample.

    A mechanism must be able to (a) report per-tuple inclusion
    probabilities ``PrS(t)`` against a reference population and (b) draw a
    concrete sample.  Inverse-probability reweighting (known-mechanism
    SEMI-OPEN evaluation) uses (a); ``CREATE SAMPLE ... USING MECHANISM``
    uses (b).
    """

    @abstractmethod
    def inclusion_probabilities(self, population: Relation) -> np.ndarray:
        """``PrS(t)`` for every tuple of ``population`` (values in (0, 1])."""

    @abstractmethod
    def draw(self, population: Relation, rng: np.random.Generator) -> np.ndarray:
        """Row indices of one concrete sample drawn from ``population``."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable rendering, e.g. ``UNIFORM PERCENT 10``."""

    def inverse_probability_weights(self, population: Relation, sample_indices: np.ndarray) -> np.ndarray:
        """Weights ``1 / PrS(t)`` for the sampled tuples (paper Sec. 3, [7])."""
        probabilities = self.inclusion_probabilities(population)[sample_indices]
        if np.any(probabilities <= 0.0):
            raise ReweightError(
                f"mechanism {self.describe()} assigned zero inclusion probability "
                "to a sampled tuple"
            )
        return 1.0 / probabilities

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


def validate_percent(percent: float) -> float:
    """Validate a PERCENT clause value (0 < percent <= 100)."""
    if not 0.0 < percent <= 100.0:
        raise ReweightError(f"PERCENT must be in (0, 100], got {percent}")
    return float(percent)


def sample_size(population_rows: int, percent: float) -> int:
    """Number of tuples a ``percent`` sample of ``population_rows`` contains."""
    size = int(round(population_rows * percent / 100.0))
    return max(1, min(size, population_rows)) if population_rows > 0 else 0
