"""Stratified sampling: ``USING MECHANISM STRATIFIED ON a PERCENT p``.

Equal allocation: the total sample budget (``p`` percent of the population)
is split evenly across the strata (distinct values of the stratification
attribute).  This is the textbook design that guarantees coverage of rare
strata — exactly the "sample coverage" property the paper's M-SWG relies on
(Sec. 5.2) — at the cost of being distributionally biased, which is what
reweighting corrects.
"""

from __future__ import annotations

import numpy as np

from repro.mechanisms.base import SamplingMechanism, sample_size, validate_percent
from repro.relational.groupby import group_rows
from repro.relational.relation import Relation


class StratifiedMechanism(SamplingMechanism):
    """Equal-allocation stratified sampling on one attribute."""

    def __init__(self, attribute: str, percent: float):
        self.attribute = attribute
        self.percent = validate_percent(percent)

    def _per_stratum_quota(self, population: Relation) -> list[tuple[np.ndarray, int]]:
        """(stratum row indices, rows to draw) for every stratum.

        Each stratum's quota is capped at its size; leftover budget is
        redistributed greedily to the largest strata so the total sample
        size stays at ``p`` percent whenever feasible.
        """
        groups = group_rows(population, [self.attribute])
        total = sample_size(population.num_rows, self.percent)
        k = len(groups)
        if k == 0:
            return []
        base = total // k
        remainder = total - base * k
        quotas = []
        for position, (_, indices) in enumerate(groups):
            want = base + (1 if position < remainder else 0)
            quotas.append([indices, min(want, len(indices))])
        shortfall = total - sum(q for _, q in quotas)
        if shortfall > 0:
            by_capacity = sorted(
                range(k), key=lambda i: len(quotas[i][0]) - quotas[i][1], reverse=True
            )
            for i in by_capacity:
                if shortfall == 0:
                    break
                capacity = len(quotas[i][0]) - quotas[i][1]
                extra = min(capacity, shortfall)
                quotas[i][1] += extra
                shortfall -= extra
        return [(indices, quota) for indices, quota in quotas]

    def inclusion_probabilities(self, population: Relation) -> np.ndarray:
        probabilities = np.zeros(population.num_rows)
        for indices, quota in self._per_stratum_quota(population):
            if len(indices):
                probabilities[indices] = quota / len(indices)
        return probabilities

    def draw(self, population: Relation, rng: np.random.Generator) -> np.ndarray:
        chosen: list[np.ndarray] = []
        for indices, quota in self._per_stratum_quota(population):
            if quota > 0:
                chosen.append(rng.choice(indices, size=quota, replace=False))
        if not chosen:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(chosen))

    def describe(self) -> str:
        return f"STRATIFIED ON {self.attribute} PERCENT {self.percent:g}"
