"""Distribution-fit metrics for reweighted/generated samples."""

from __future__ import annotations

import numpy as np

from repro.catalog.metadata import Marginal
from repro.generative.losses.sliced import random_unit_projections
from repro.generative.losses.wasserstein import wasserstein_1d
from repro.relational.relation import Relation


def marginal_fit_error(
    relation: Relation,
    weights: np.ndarray | None,
    target: Marginal,
) -> float:
    """L1 distance between the achieved and target (normalised) marginals.

    0 means the weighted data realises the target exactly; 2 means the
    distributions are disjoint.
    """
    achieved = Marginal.from_data(relation, list(target.attributes), weights=weights)
    return target.l1_distance(achieved)


def sliced_wasserstein_metric(
    x: np.ndarray,
    y: np.ndarray,
    rng: np.random.Generator,
    num_projections: int = 128,
) -> float:
    """Monte-Carlo sliced W₁ between two point clouds of equal dimension.

    Used as a shape metric (e.g. "does the generated spiral still look
    like the population spiral", Fig. 5) — exact per projection, averaged
    over random directions.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    projections = random_unit_projections(rng, x.shape[1], num_projections)
    distances = [
        wasserstein_1d(x @ w, y @ w) for w in projections
    ]
    return float(np.mean(distances))
