"""Evaluation metrics: query error, distribution fit, box-plot stats."""

from repro.metrics.error import (
    average_percent_difference,
    percent_difference,
)
from repro.metrics.distribution import marginal_fit_error, sliced_wasserstein_metric
from repro.metrics.summary import BoxplotStats, boxplot_stats

__all__ = [
    "percent_difference",
    "average_percent_difference",
    "marginal_fit_error",
    "sliced_wasserstein_metric",
    "BoxplotStats",
    "boxplot_stats",
]
