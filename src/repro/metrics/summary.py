"""Box-plot summary statistics (Fig. 6's rendering).

"Fig. 6 show box plots (X is average) of the average query error ...
where the whiskers show the 3rd and 97th percentiles."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import MosaicError


@dataclass(frozen=True)
class BoxplotStats:
    mean: float
    median: float
    p3: float
    p25: float
    p75: float
    p97: float
    count: int

    def as_row(self) -> dict[str, float]:
        return {
            "mean": self.mean,
            "median": self.median,
            "p3": self.p3,
            "p25": self.p25,
            "p75": self.p75,
            "p97": self.p97,
            "count": self.count,
        }


def boxplot_stats(values: Sequence[float]) -> BoxplotStats:
    """Mean, median, quartiles, and the paper's 3rd/97th whiskers."""
    finite = [v for v in values if np.isfinite(v)]
    if not finite:
        raise MosaicError("boxplot_stats needs at least one finite value")
    arr = np.asarray(finite, dtype=np.float64)
    return BoxplotStats(
        mean=float(np.mean(arr)),
        median=float(np.median(arr)),
        p3=float(np.percentile(arr, 3)),
        p25=float(np.percentile(arr, 25)),
        p75=float(np.percentile(arr, 75)),
        p97=float(np.percentile(arr, 97)),
        count=len(finite),
    )
