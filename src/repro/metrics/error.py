"""Query-answer error metrics.

The paper reports "average percent difference": ``|estimate − truth| /
truth × 100``, averaged over queries (and, for group-by queries, over the
groups present in both answers — the "not-empty filter" of Sec. 5.3).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import MosaicError


def percent_difference(estimate: float, truth: float) -> float:
    """``|estimate − truth| / |truth| × 100``.

    A zero truth with a nonzero estimate is an infinite relative error;
    zero/zero is a perfect answer.
    """
    if truth == 0.0:
        return 0.0 if estimate == 0.0 else float("inf")
    return abs(estimate - truth) / abs(truth) * 100.0


def average_percent_difference(
    estimates: Mapping[tuple, float],
    truths: Mapping[tuple, float],
    policy: str = "common",
    missing_penalty: float = 100.0,
) -> float | None:
    """Average percent difference between two group-keyed answers.

    ``policy``:

    - ``"common"`` — average over the keys present in both (the paper's
      not-empty filter).  Returns ``None`` when the intersection is empty
      (the "empty answer" case the paper excludes).
    - ``"penalize_missing"`` — additionally counts ``missing_penalty`` for
      every true group the estimate misses (false negatives) and for every
      estimated group that does not exist (false positives).
    """
    if policy not in ("common", "penalize_missing"):
        raise MosaicError(f"unknown comparison policy {policy!r}")
    common = set(estimates) & set(truths)
    errors = [percent_difference(estimates[k], truths[k]) for k in sorted(common)]
    if policy == "penalize_missing":
        errors.extend([missing_penalty] * len(set(truths) - common))
        errors.extend([missing_penalty] * len(set(estimates) - common))
    if not errors:
        return None
    return float(np.mean(errors))
