"""Exception hierarchy for the Mosaic reproduction.

Every error raised by this package derives from :class:`MosaicError` so
callers can catch one type at the API boundary.  Subclasses separate the
major failure domains: the SQL front end, the catalog, the relational
substrate, reweighting, generative modelling, and — since the network
service layer — connection lifecycle and wire transport.

Wire codes
----------
Every subclass carries a **stable wire code** (:data:`WIRE_CODES`) so the
server can ship an error across the framed protocol and the client can
re-raise it as the *same exception type* with the same message
(:func:`error_to_wire` / :func:`error_from_wire`).  Codes are part of the
protocol contract: never reuse or rename one, and register every new
subclass (``tests/server/test_protocol.py`` fails if one is missing).
"""

from __future__ import annotations


class MosaicError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class SchemaError(MosaicError):
    """A relation schema is malformed or violated (bad column, dtype, arity)."""


class TypeMismatchError(SchemaError):
    """A value or expression does not match the declared column type."""


class SqlError(MosaicError):
    """Base class for errors raised by the SQL front end."""


class SqlSyntaxError(SqlError):
    """The statement text could not be tokenised or parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    known, so error messages can point at the statement text.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}, column {column})"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SqlCompileError(SqlError):
    """The statement parsed but cannot be translated to an executable plan."""


class CatalogError(MosaicError):
    """A catalog object is missing, duplicated, or used inconsistently."""


class UnknownRelationError(CatalogError):
    """A statement referenced a relation name the catalog does not know."""

    def __init__(self, name: str):
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class DuplicateRelationError(CatalogError):
    """A CREATE statement used a name that already exists in the catalog."""

    def __init__(self, name: str):
        super().__init__(f"relation already exists: {name!r}")
        self.name = name


class VisibilityError(MosaicError):
    """A query used a visibility level that cannot be satisfied.

    For example a SEMI-OPEN query over a population with neither a known
    sampling mechanism nor any marginal metadata.
    """


class ReweightError(MosaicError):
    """Sample reweighting (inverse-probability or IPF) failed."""


class ConvergenceError(ReweightError):
    """An iterative fit (IPF, generator training) failed to converge."""

    def __init__(self, message: str, iterations: int | None = None):
        if iterations is not None:
            message = f"{message} (after {iterations} iterations)"
        super().__init__(message)
        self.iterations = iterations


class GenerativeModelError(MosaicError):
    """A generative model could not be trained or sampled from."""


class EncodingError(GenerativeModelError):
    """Table encoding/decoding between relations and matrices failed."""


class SessionClosedError(MosaicError):
    """A statement was issued against a closed session or shut-down engine."""


class ProtocolError(MosaicError):
    """The wire protocol was violated (bad magic, version, or frame)."""


class ServerError(MosaicError):
    """The server failed outside the Mosaic error hierarchy.

    Wraps unexpected server-side exceptions (the original type name is
    embedded in the message) and operational refusals such as the
    connection limit, so clients always receive a :class:`MosaicError`.
    """


class QueryCancelledError(MosaicError):
    """A queued or in-flight query was cancelled by a CANCEL frame."""


class QueryTimeoutError(MosaicError):
    """A query exceeded the server's per-query execution timeout."""


class WorkerCrashError(MosaicError):
    """A parallel worker process died (or stalled) and the task could not
    be retried.

    The execution layer retries a crashed worker's tasks on a fresh
    process (``ExecutionConfig.max_task_retries`` times per task); this
    error surfaces only when the budget is exhausted or the whole batch
    times out — queries never hang on a dead worker, and the engine
    respawns a fresh pool for the next query.
    """


class ConnectionLostError(MosaicError):
    """A pooled client connection died mid-request and one reconnect-and-
    retry attempt also failed.

    Raised instead of a raw ``ConnectionResetError`` / ``BrokenPipeError``
    so callers of :class:`repro.client.Client` (and the fleet router) see
    a typed, wire-codable transport failure.
    """


class ShardUnavailableError(MosaicError):
    """A fleet shard could not serve its part of a query.

    Raised by the fleet router when a shard dies mid-scatter or cannot be
    (re)dialed; ``shard`` identifies the failed shard.  The router keeps
    serving from the surviving shards (degraded mode) where the routing
    policy allows it.
    """

    def __init__(self, message: str, shard: int | None = None):
        super().__init__(message)
        self.shard = shard


class PartialUnsupportedError(MosaicError):
    """A query cannot run as cross-shard partial aggregates.

    Scatter/gather needs a decomposable aggregate plan (filters + one
    COUNT/SUM/AVG/MIN/MAX aggregate + optional sort/limit tail) whose
    weights are shard-locally computable.  Row-level reads and globally
    fitted SEMI-OPEN reweighting over a *sliced* relation are not — the
    error message directs callers to replicate the relation instead.
    """


# --------------------------------------------------------------------- #
# Wire transport
# --------------------------------------------------------------------- #

#: Stable wire code -> exception class.  Append-only: codes are part of
#: the network protocol contract and must never be renamed or reused.
WIRE_CODES: dict[str, type[MosaicError]] = {
    "MOSAIC": MosaicError,
    "SCHEMA": SchemaError,
    "TYPE_MISMATCH": TypeMismatchError,
    "SQL": SqlError,
    "SQL_SYNTAX": SqlSyntaxError,
    "SQL_COMPILE": SqlCompileError,
    "CATALOG": CatalogError,
    "UNKNOWN_RELATION": UnknownRelationError,
    "DUPLICATE_RELATION": DuplicateRelationError,
    "VISIBILITY": VisibilityError,
    "REWEIGHT": ReweightError,
    "CONVERGENCE": ConvergenceError,
    "GENERATIVE_MODEL": GenerativeModelError,
    "ENCODING": EncodingError,
    "SESSION_CLOSED": SessionClosedError,
    "PROTOCOL": ProtocolError,
    "SERVER": ServerError,
    "QUERY_CANCELLED": QueryCancelledError,
    "QUERY_TIMEOUT": QueryTimeoutError,
    "WORKER_CRASH": WorkerCrashError,
    "CONNECTION_LOST": ConnectionLostError,
    "SHARD_UNAVAILABLE": ShardUnavailableError,
    "PARTIAL_UNSUPPORTED": PartialUnsupportedError,
}

_CODES_BY_CLASS: dict[type[MosaicError], str] = {
    cls: code for code, cls in WIRE_CODES.items()
}


def wire_code(error_type: type[BaseException]) -> str:
    """The stable wire code for an error type.

    Unregistered subclasses (e.g. defined by user extensions) map to their
    nearest registered ancestor, so they still cross the wire — as the
    ancestor type.
    """
    for cls in error_type.__mro__:
        code = _CODES_BY_CLASS.get(cls)
        if code is not None:
            return code
    return "SERVER"


def error_to_wire(exc: BaseException) -> tuple[str, str, dict]:
    """``(code, message, data)`` for shipping ``exc`` across the wire.

    ``data`` carries the JSON-safe instance attributes (``line``,
    ``column``, ``name``, ``iterations``, ...) so the reconstructed
    exception keeps them.  Non-Mosaic exceptions wrap as ``SERVER`` with
    the original type name embedded in the message.
    """
    if not isinstance(exc, MosaicError):
        return "SERVER", f"{type(exc).__name__}: {exc}", {}
    data = {
        key: value
        for key, value in vars(exc).items()
        if isinstance(value, (bool, int, float, str)) or value is None
    }
    return wire_code(type(exc)), str(exc), data


def error_from_wire(
    code: str, message: str, data: dict | None = None
) -> MosaicError:
    """Reconstruct the exception an :func:`error_to_wire` tuple describes.

    The instance is built without re-running the subclass ``__init__``
    (which would re-wrap an already-formatted message), so the type and
    ``str()`` round-trip exactly; ``data`` attributes are restored
    directly.  Unknown codes degrade to plain :class:`MosaicError`.
    """
    cls = WIRE_CODES.get(code, MosaicError)
    exc = cls.__new__(cls)
    Exception.__init__(exc, message)
    for key, value in (data or {}).items():
        try:
            setattr(exc, key, value)
        except AttributeError:  # pragma: no cover - slotted subclass
            pass
    return exc
