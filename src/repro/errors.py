"""Exception hierarchy for the Mosaic reproduction.

Every error raised by this package derives from :class:`MosaicError` so
callers can catch one type at the API boundary.  Subclasses separate the
major failure domains: the SQL front end, the catalog, the relational
substrate, reweighting, and generative modelling.
"""

from __future__ import annotations


class MosaicError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class SchemaError(MosaicError):
    """A relation schema is malformed or violated (bad column, dtype, arity)."""


class TypeMismatchError(SchemaError):
    """A value or expression does not match the declared column type."""


class SqlError(MosaicError):
    """Base class for errors raised by the SQL front end."""


class SqlSyntaxError(SqlError):
    """The statement text could not be tokenised or parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    known, so error messages can point at the statement text.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}, column {column})"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SqlCompileError(SqlError):
    """The statement parsed but cannot be translated to an executable plan."""


class CatalogError(MosaicError):
    """A catalog object is missing, duplicated, or used inconsistently."""


class UnknownRelationError(CatalogError):
    """A statement referenced a relation name the catalog does not know."""

    def __init__(self, name: str):
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class DuplicateRelationError(CatalogError):
    """A CREATE statement used a name that already exists in the catalog."""

    def __init__(self, name: str):
        super().__init__(f"relation already exists: {name!r}")
        self.name = name


class VisibilityError(MosaicError):
    """A query used a visibility level that cannot be satisfied.

    For example a SEMI-OPEN query over a population with neither a known
    sampling mechanism nor any marginal metadata.
    """


class ReweightError(MosaicError):
    """Sample reweighting (inverse-probability or IPF) failed."""


class ConvergenceError(ReweightError):
    """An iterative fit (IPF, generator training) failed to converge."""

    def __init__(self, message: str, iterations: int | None = None):
        if iterations is not None:
            message = f"{message} (after {iterations} iterations)"
        super().__init__(message)
        self.iterations = iterations


class GenerativeModelError(MosaicError):
    """A generative model could not be trained or sampled from."""


class EncodingError(GenerativeModelError):
    """Table encoding/decoding between relations and matrices failed."""
