"""Bench: regenerate the Sec. 3.3 visibility trade-off table."""

from repro.experiments import visibility_table


def test_visibility_table(run_once):
    result = run_once(visibility_table.run, visibility_table.quick_config())
    print()
    print(result.render())

    rows = {row["visibility"]: row for row in result.rows}
    # CLOSED and SEMI-OPEN: n false negatives, zero false positives.
    assert rows["CLOSED"]["false_positive_groups"] == 0
    assert rows["SEMI-OPEN"]["false_positive_groups"] == 0
    assert (
        rows["CLOSED"]["false_negative_groups"]
        == rows["SEMI-OPEN"]["false_negative_groups"]
    )
    # OPEN: <= n false negatives (possibly at the cost of false positives).
    assert (
        rows["OPEN"]["false_negative_groups"]
        <= rows["CLOSED"]["false_negative_groups"]
    )
