"""Bench: the network service layer vs. in-process execution.

Boots a :class:`~repro.server.server.MosaicServer` over the flights
workload and measures, writing ``BENCH_server.json``:

- **Protocol overhead**: p50 latency of a cached CLOSED grouped aggregate
  in-process vs. over a wire connection — the acceptance target is
  < 2 ms of added p50 on the CI runner (frame + columnar encode + the
  event-loop/executor hop; tune via ``MOSAIC_SERVER_OVERHEAD_BUDGET_MS``).
- **Concurrent load**: qps and p50/p99 latency at 1 / 8 / 32 concurrent
  clients, each its own connection (= its own server session), running a
  mixed CLOSED / SEMI-OPEN read workload.  ``levels.*.p50_ms`` feed the
  CI regression gate (``check_bench_regression.py``).

Absolute numbers are hardware-bound (``cpu_count`` is recorded); the
correctness floor asserted here is only that every client completes and
wire results match in-process results.
"""

import json
import os
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro import MosaicDB
from repro.client import Connection
from repro.server.server import MosaicServer
from repro.workloads.flights import (
    FlightsConfig,
    bucket_flights,
    flights_marginals,
    make_flights_population,
)

CONFIG = FlightsConfig(rows=5_000)

CLOSED_SQL = "SELECT CLOSED carrier, AVG(distance) AS d FROM Flights GROUP BY carrier"
READ_MIX = (
    CLOSED_SQL,
    "SELECT CLOSED carrier, COUNT(*) AS n, AVG(elapsed_time) AS t "
    "FROM Flights WHERE distance > 500 GROUP BY carrier",
    "SELECT SEMI-OPEN carrier, AVG(distance) AS d FROM S GROUP BY carrier",
)
LEVELS = {1: 150, 8: 40, 32: 12}  # concurrent clients -> ops per client
OVERHEAD_ITERS = 200


@pytest.fixture(scope="module")
def served_db():
    rng = np.random.default_rng(0)
    population = make_flights_population(CONFIG, rng)
    db = MosaicDB(seed=0)
    db.execute(
        "CREATE GLOBAL POPULATION Flights "
        "(carrier TEXT, taxi_out INT, taxi_in INT, elapsed_time INT, distance INT)"
    )
    db.execute("CREATE SAMPLE S AS (SELECT * FROM Flights)")
    from repro.mechanisms.biased import PredicateBiasedMechanism
    from repro.workloads.flights import long_flight_predicate

    mechanism = PredicateBiasedMechanism(long_flight_predicate(CONFIG), 5.0, 0.95)
    sample_rows = population.take(mechanism.draw(population, db.rng))
    db.ingest_relation("S", bucket_flights(sample_rows, CONFIG))
    for marginal in flights_marginals(population, CONFIG):
        db.register_marginal(marginal.name, "Flights", marginal)
    for sql in READ_MIX:  # prime plan + reweight caches
        db.execute(sql)
    server = MosaicServer(
        db.engine,
        port=0,
        session_config=db.session.config,
        max_connections=64,
        executor_workers=8,
    ).start_in_thread()
    try:
        yield db, server
    finally:
        server.stop_in_thread()


def _p50_ms(run, iters: int) -> float:
    latencies = np.empty(iters)
    for i in range(iters):
        t0 = time.perf_counter()
        run()
        latencies[i] = time.perf_counter() - t0
    return float(np.percentile(latencies * 1000.0, 50))


def _closed_p50_at_sample_rate(db, rate: str | None, iters: int) -> float:
    """In-process CLOSED p50 with ``MOSAIC_TRACE_SAMPLE`` pinned to
    ``rate`` (``None`` = unset, i.e. the always-on 1-in-64 default).
    The sampler re-reads the env per query, so toggling it here is
    enough — no engine restart."""
    previous = os.environ.get("MOSAIC_TRACE_SAMPLE")
    if rate is None:
        os.environ.pop("MOSAIC_TRACE_SAMPLE", None)
    else:
        os.environ["MOSAIC_TRACE_SAMPLE"] = rate
    try:
        return _p50_ms(lambda: db.execute(CLOSED_SQL), iters)
    finally:
        if previous is None:
            os.environ.pop("MOSAIC_TRACE_SAMPLE", None)
        else:
            os.environ["MOSAIC_TRACE_SAMPLE"] = previous


def _level(port: int, clients: int, ops_per_client: int) -> dict:
    """qps + latency percentiles for ``clients`` concurrent connections."""
    latencies: list[float] = []
    mutex = threading.Lock()
    errors: list[Exception] = []
    connections = [Connection("127.0.0.1", port) for _ in range(clients)]
    barrier = threading.Barrier(clients + 1)

    def worker(connection):
        local: list[float] = []
        try:
            barrier.wait()
            for i in range(ops_per_client):
                t0 = time.perf_counter()
                connection.execute(READ_MIX[i % len(READ_MIX)])
                local.append((time.perf_counter() - t0) * 1000.0)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
        with mutex:
            latencies.extend(local)

    threads = [threading.Thread(target=worker, args=(c,)) for c in connections]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    for connection in connections:
        connection.close()
    assert not errors, errors
    total_ops = clients * ops_per_client
    return {
        "clients": clients,
        "ops": total_ops,
        "qps": round(total_ops / elapsed, 2),
        "p50_ms": round(float(np.percentile(latencies, 50)), 4),
        "p99_ms": round(float(np.percentile(latencies, 99)), 4),
    }


def test_wire_results_match_in_process(served_db):
    db, server = served_db
    with Connection("127.0.0.1", server.port) as connection:
        for sql in READ_MIX:
            wire = connection.execute(sql)
            local = db.execute(sql)
            assert wire.columns == local.columns
            for name in wire.columns:
                mine, theirs = wire.column(name), local.column(name)
                if mine.dtype == object:
                    assert list(mine) == list(theirs)
                else:
                    assert mine.tobytes() == theirs.tobytes()


def test_emit_bench_json(served_db):
    db, server = served_db
    inprocess_p50 = _p50_ms(lambda: db.execute(CLOSED_SQL), OVERHEAD_ITERS)
    with Connection("127.0.0.1", server.port) as connection:
        server_p50 = _p50_ms(lambda: connection.execute(CLOSED_SQL), OVERHEAD_ITERS)
    overhead = server_p50 - inprocess_p50

    levels = {
        str(clients): _level(server.port, clients, ops)
        for clients, ops in LEVELS.items()
    }

    # PR 9 tracing budget: the always-on 1-in-64 sampler must not move
    # the CLOSED p50 — the median query runs the fully untraced path.
    tracing_off = _closed_p50_at_sample_rate(db, "0", OVERHEAD_ITERS)
    tracing_on = _closed_p50_at_sample_rate(db, None, OVERHEAD_ITERS)
    tracing_overhead_pct = (tracing_on - tracing_off) / tracing_off * 100.0

    payload = {
        "workload": (
            f"flights rows={CONFIG.rows}, mixed CLOSED/SEMI-OPEN read mix "
            f"of {len(READ_MIX)} cached queries"
        ),
        "cpu_count": os.cpu_count(),
        "closed_inprocess_p50_ms": round(inprocess_p50, 4),
        "closed_server_p50_ms": round(server_p50, 4),
        "closed_p50_overhead_ms": round(overhead, 4),
        "closed_p50_tracing_off_ms": round(tracing_off, 4),
        "closed_p50_tracing_on_ms": round(tracing_on, 4),
        "tracing_overhead_pct": round(tracing_overhead_pct, 2),
        "levels": levels,
    }
    out_path = Path(__file__).resolve().parent.parent / "BENCH_server.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    assert all(level["qps"] > 0 for level in levels.values())
    # Acceptance: serving a cached CLOSED query should cost < 2ms of p50
    # over in-process execution (budget adjustable for slow runners).
    budget = float(os.environ.get("MOSAIC_SERVER_OVERHEAD_BUDGET_MS", "2.0"))
    assert overhead < budget, (
        f"server p50 overhead {overhead:.3f} ms exceeds {budget:.1f} ms "
        f"(in-process {inprocess_p50:.3f} ms, server {server_p50:.3f} ms)"
    )
    # Acceptance: default-rate tracing costs < 3% of CLOSED p50.  The
    # 0.05 ms absolute floor keeps sub-ms latencies from flaking the
    # gate on timer jitter alone.
    tracing_budget_pct = float(
        os.environ.get("MOSAIC_TRACING_OVERHEAD_BUDGET_PCT", "3.0")
    )
    allowed_ms = max(tracing_budget_pct / 100.0 * tracing_off, 0.05)
    assert tracing_on - tracing_off < allowed_ms, (
        f"tracing overhead {tracing_on - tracing_off:.4f} ms "
        f"({tracing_overhead_pct:.2f}%) exceeds {tracing_budget_pct:.1f}% of "
        f"the untraced p50 {tracing_off:.4f} ms"
    )
