"""Ablation: projection count p in the sliced Wasserstein loss.

The paper uses p=1000 for flights.  More projections estimate the sliced
distance better but cost linearly more per training step; this bench
measures both the per-step cost and the quality of a fixed training
budget as p varies.
"""

import numpy as np
import pytest

from repro.generative.losses.sliced import SlicedMarginalLoss, random_unit_projections
from repro.metrics.distribution import sliced_wasserstein_metric


def _target(rng, cells=400, dim=6):
    points = rng.normal(size=(cells, dim))
    points[:, 0] += 2.0  # a shifted target so there is something to learn
    weights = rng.random(cells) + 0.1
    return points, weights


@pytest.mark.parametrize("projections", [16, 128, 1000])
def test_step_cost_scales_with_projections(benchmark, projections):
    """Per-step loss+gradient cost for one 2-D-marginal term."""
    rng = np.random.default_rng(0)
    points, weights = _target(rng)
    omega = random_unit_projections(rng, points.shape[1], projections)
    loss = SlicedMarginalLoss(points, weights, omega, batch_size=500)
    x = rng.normal(size=(500, points.shape[1]))
    benchmark(loss.loss_and_grad, x)


@pytest.mark.parametrize("projections", [8, 64, 256])
def test_quality_for_fixed_budget(benchmark, projections):
    """Same gradient-step budget; measure the final distance to the target."""
    rng = np.random.default_rng(0)
    points, weights = _target(rng, cells=300, dim=4)
    omega = random_unit_projections(rng, 4, projections)
    loss = SlicedMarginalLoss(points, weights, omega, batch_size=128)

    def train():
        x = rng.normal(size=(128, 4))
        for _ in range(150):
            _, grad = loss.loss_and_grad(x)
            x = x - 30.0 * grad
        return x

    x = benchmark.pedantic(train, rounds=1, iterations=1)
    final = sliced_wasserstein_metric(x, points, np.random.default_rng(1))
    print(f"\np={projections}: final sliced W1 to target = {final:.4f}")
    # Even few projections should move the cloud most of the way: the
    # initial distance is ~2 (the target shift).
    assert final < 1.0
