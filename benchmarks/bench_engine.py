"""Bench: end-to-end SQL latency per visibility level on flights.

Not a paper figure — an engineering benchmark for the engine itself:
parse + plan + (reweight) + execute for each visibility level, plus the
relational substrate's grouped-aggregation throughput.

Since the compiled-pipeline refactor the interesting split is cold vs.
cached: a cold execution pays parse + bind + compile (+ IPF for
SEMI-OPEN), a cached one reuses the LRU'd plan and the version-stamped
reweight.  ``test_emit_bench_json`` measures both by hand and writes
``BENCH_engine.json`` so CI keeps a perf trajectory across PRs.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro import MosaicDB
from repro.engine.executor import execute_select
from repro.relational.relation import dictionary_stats
from repro.sql.parser import parse_statement
from repro.workloads.flights import (
    FlightsConfig,
    bucket_flights,
    flights_marginals,
    make_flights_population,
)

CONFIG = FlightsConfig(rows=30_000)

GROUPED_SQL = "SELECT CLOSED carrier, AVG(distance) AS d FROM Flights GROUP BY carrier"
SEMI_OPEN_SQL = "SELECT SEMI-OPEN carrier, AVG(distance) AS d FROM Flights GROUP BY carrier"
# The dictionary-scan microbench: a TEXT predicate (code-space comparison +
# IN probe) feeding a grouped aggregate over the 30k-row relation.
FILTERED_GROUPED_SQL = (
    "SELECT carrier, AVG(distance) AS d, COUNT(*) AS n FROM F "
    "WHERE carrier != 'WN' AND carrier IN ('AA', 'DL', 'UA', 'B6', 'NK', 'AS') "
    "GROUP BY carrier"
)


@pytest.fixture(scope="module")
def flights_db():
    rng = np.random.default_rng(0)
    population = make_flights_population(CONFIG, rng)
    db = MosaicDB(seed=0)
    db.execute(
        "CREATE GLOBAL POPULATION Flights "
        "(carrier TEXT, taxi_out INT, taxi_in INT, elapsed_time INT, distance INT)"
    )
    db.execute("CREATE SAMPLE S AS (SELECT * FROM Flights)")
    from repro.mechanisms.biased import PredicateBiasedMechanism
    from repro.workloads.flights import long_flight_predicate

    mechanism = PredicateBiasedMechanism(long_flight_predicate(CONFIG), 5.0, 0.95)
    sample_rows = population.take(mechanism.draw(population, db.rng))
    db.ingest_relation("S", bucket_flights(sample_rows, CONFIG))
    for marginal in flights_marginals(population, CONFIG):
        db.register_marginal(marginal.name, "Flights", marginal)
    return db, population


def test_closed_query_latency(benchmark, flights_db):
    db, _ = flights_db
    result = benchmark(db.execute, GROUPED_SQL)
    assert result.num_rows > 0


def test_closed_query_cold_latency(benchmark, flights_db):
    """Every call recompiles: parse + bind + compile + execute."""
    db, _ = flights_db

    def cold():
        db.clear_caches()
        return db.execute(GROUPED_SQL)

    result = benchmark(cold)
    assert result.has_note("plan: compiled and cached")


def test_semi_open_query_latency(benchmark, flights_db):
    """Warm path: cached plan + version-stamped cached IPF reweight."""
    db, _ = flights_db
    result = benchmark(db.execute, SEMI_OPEN_SQL)
    assert result.num_rows > 0


def test_semi_open_query_cold_latency(run_once, flights_db):
    """Includes the full IPF rake (cleared caches; timed once)."""
    db, _ = flights_db

    def cold():
        db.clear_caches()
        return db.execute(SEMI_OPEN_SQL)

    result = run_once(cold)
    assert result.num_rows > 0


def test_parser_throughput(benchmark):
    sql = (
        "SELECT SEMI-OPEN carrier, AVG(distance) FROM Flights "
        "WHERE elapsed_time > 200 AND carrier IN ('WN', 'AA') GROUP BY carrier "
        "ORDER BY carrier LIMIT 10"
    )
    benchmark(parse_statement, sql)


def test_executor_group_by_throughput(benchmark, flights_db):
    """The vectorized grouped-aggregation path over the 30k-row workload."""
    _, population = flights_db
    query = parse_statement(
        "SELECT carrier, AVG(distance) AS d, COUNT(*) AS n FROM F GROUP BY carrier"
    )
    out = benchmark(execute_select, query, population)
    assert out.num_rows == 14


def test_filtered_grouped_throughput(benchmark, flights_db):
    """TEXT-predicate filter + grouped aggregate: the dictionary-scan path."""
    _, population = flights_db
    query = parse_statement(FILTERED_GROUPED_SQL)
    out = benchmark(execute_select, query, population)
    assert out.num_rows == 6


def _time_best_of(fn, repetitions: int) -> float:
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def test_emit_bench_json(flights_db):
    """Write BENCH_engine.json: cold vs. cached latency for the perf trail."""
    db, population = flights_db

    def cold():
        db.clear_caches()
        db.execute(GROUPED_SQL)

    cold_ms = _time_best_of(cold, 10)
    db.execute(GROUPED_SQL)  # prime
    cached_ms = _time_best_of(lambda: db.execute(GROUPED_SQL), 10)

    query = parse_statement(
        "SELECT carrier, AVG(distance) AS d, COUNT(*) AS n FROM F GROUP BY carrier"
    )
    grouped_ms = _time_best_of(lambda: execute_select(query, population), 10)

    # Filtered categorical aggregate, cold plan-cache: execute_select
    # recompiles per call, so only the scan/filter/aggregate machinery (and
    # the relation's memoized dictionary encodings) carries between runs.
    filtered_query = parse_statement(FILTERED_GROUPED_SQL)
    stats_before = dictionary_stats()
    filtered_ms = _time_best_of(lambda: execute_select(filtered_query, population), 10)
    stats_after = dictionary_stats()

    def semi_cold():
        db.clear_caches()
        db.execute(SEMI_OPEN_SQL)

    semi_cold_ms = _time_best_of(semi_cold, 3)
    db.execute(SEMI_OPEN_SQL)  # prime
    semi_cached_ms = _time_best_of(lambda: db.execute(SEMI_OPEN_SQL), 10)

    payload = {
        "workload": f"flights rows={CONFIG.rows}",
        "closed_grouped_cold_ms": round(cold_ms, 4),
        "closed_grouped_cached_ms": round(cached_ms, 4),
        "plan_cache_speedup": round(cold_ms / cached_ms, 2) if cached_ms else None,
        "grouped_aggregate_30k_ms": round(grouped_ms, 4),
        "filter_grouped_30k_ms": round(filtered_ms, 4),
        "dictionary_reuse_hits": stats_after["reuse_hits"] - stats_before["reuse_hits"],
        "dictionary_builds": stats_after["builds"] - stats_before["builds"],
        "semi_open_cold_ms": round(semi_cold_ms, 4),
        "semi_open_cached_ms": round(semi_cached_ms, 4),
        "reweight_cache_speedup": (
            round(semi_cold_ms / semi_cached_ms, 2) if semi_cached_ms else None
        ),
    }
    out_path = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    assert cached_ms <= cold_ms
    # The filtered scan must run off reused encodings: only the tiny
    # aggregate-output relations may build fresh ones.
    assert payload["dictionary_reuse_hits"] > payload["dictionary_builds"]
    db.execute(GROUPED_SQL)  # first call after the last clear compiles...
    assert db.execute(GROUPED_SQL).has_note("plan: cache hit")  # ...then hits
