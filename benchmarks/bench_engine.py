"""Bench: end-to-end SQL latency per visibility level on flights.

Not a paper figure — an engineering benchmark for the engine itself:
parse + plan + (reweight) + execute for each visibility level, plus the
relational substrate's group-by throughput.
"""

import numpy as np
import pytest

from repro import MosaicDB
from repro.engine.executor import execute_select
from repro.sql.parser import parse_statement
from repro.workloads.flights import (
    FlightsConfig,
    bucket_flights,
    flights_marginals,
    make_flights_population,
)

CONFIG = FlightsConfig(rows=30_000)


@pytest.fixture(scope="module")
def flights_db():
    rng = np.random.default_rng(0)
    population = make_flights_population(CONFIG, rng)
    db = MosaicDB(seed=0)
    db.execute(
        "CREATE GLOBAL POPULATION Flights "
        "(carrier TEXT, taxi_out INT, taxi_in INT, elapsed_time INT, distance INT)"
    )
    db.execute("CREATE SAMPLE S AS (SELECT * FROM Flights)")
    from repro.mechanisms.biased import PredicateBiasedMechanism
    from repro.workloads.flights import long_flight_predicate

    mechanism = PredicateBiasedMechanism(long_flight_predicate(CONFIG), 5.0, 0.95)
    sample_rows = population.take(mechanism.draw(population, db.rng))
    db.ingest_relation("S", bucket_flights(sample_rows, CONFIG))
    for marginal in flights_marginals(population, CONFIG):
        db.register_marginal(marginal.name, "Flights", marginal)
    return db, population


def test_closed_query_latency(benchmark, flights_db):
    db, _ = flights_db
    result = benchmark(
        db.execute,
        "SELECT CLOSED carrier, AVG(distance) AS d FROM Flights GROUP BY carrier",
    )
    assert result.num_rows > 0


def test_semi_open_query_latency(benchmark, flights_db):
    """Includes the full IPF rake on every call (no caching)."""
    db, _ = flights_db
    result = benchmark(
        db.execute,
        "SELECT SEMI-OPEN carrier, AVG(distance) AS d FROM Flights GROUP BY carrier",
    )
    assert result.num_rows > 0


def test_parser_throughput(benchmark):
    sql = (
        "SELECT SEMI-OPEN carrier, AVG(distance) FROM Flights "
        "WHERE elapsed_time > 200 AND carrier IN ('WN', 'AA') GROUP BY carrier "
        "ORDER BY carrier LIMIT 10"
    )
    benchmark(parse_statement, sql)


def test_executor_group_by_throughput(benchmark, flights_db):
    _, population = flights_db
    query = parse_statement(
        "SELECT carrier, AVG(distance) AS d, COUNT(*) AS n FROM F GROUP BY carrier"
    )
    out = benchmark(execute_select, query, population)
    assert out.num_rows == 14
