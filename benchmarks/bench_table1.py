"""Bench: regenerate Table 1 (flights attributes and M-SWG encoded dims)."""

from repro.experiments import table1


def test_table1(run_once):
    result = run_once(table1.run, table1.quick_config())
    print()
    print(result.render())

    by_attr = {row["Flights"]: row for row in result.rows}
    # Paper Table 1: carrier is a 14-wide one-hot block, numerics width 1.
    assert by_attr["carrier"]["M-SWG Dim"] == 14
    for attribute in ("taxi_out", "taxi_in", "elapsed_time", "distance"):
        assert by_attr[attribute]["M-SWG Dim"] == 1
    # Sec. 5.3: "Our M-SWG has to model an 18 dimensional space".
    assert result.params["total_width"] == 18
