"""Bench: the sharded engine fleet vs. a single direct server.

Boots in-process fleets (real sockets: N ``MosaicServer`` shards behind a
``FleetRouter``) at 1 / 2 / 4 shards over the flights workload and
measures, writing ``BENCH_fleet.json``:

- **Router overhead**: p50 latency of a cached CLOSED query through a
  1-shard fleet vs. the same query against the shard's server directly —
  the acceptance target is < 2 ms of added p50 (one extra frame hop +
  the router's executor bridge; tune via
  ``MOSAIC_FLEET_OVERHEAD_BUDGET_MS`` for slow runners).
- **Per-shard-count throughput**: qps and p50/p99 latency for
  whole-query routed (replicated) reads and for scatter/gather PARTIAL
  aggregates over a sliced relation, at each fleet size.

Scaling is hardware-bound, so the payload records ``cpu_count`` honestly
and the CI gate (``check_bench_regression.py``) only compares qps across
runs with matching core counts.  Bit-identity between the fleet and a
direct single server is asserted in-bench for both read paths.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import MosaicDB
from repro.client import Connection
from repro.fleet import FleetRouter, PartitionSpec
from repro.server.server import MosaicServer
from repro.workloads.flights import FlightsConfig, make_flights_population

CONFIG = FlightsConfig(rows=5_000)
SHARD_COUNTS = (1, 2, 4)
CLOSED_SQL = "SELECT CLOSED carrier, AVG(distance) AS d FROM Flights GROUP BY carrier"
SCATTER_SQL = (
    "SELECT name, COUNT(*) AS n, SUM(n) AS s, AVG(n) AS a "
    "FROM T GROUP BY name"
)
SLICED_ROWS = 2_000
SLICED_BATCH = 500
REPLICATED_ITERS = 150
SCATTER_ITERS = 60
OVERHEAD_ITERS = 200


def build_flights_db() -> MosaicDB:
    population = make_flights_population(CONFIG, np.random.default_rng(0))
    db = MosaicDB(seed=0)
    db.execute(
        "CREATE GLOBAL POPULATION Flights "
        "(carrier TEXT, taxi_out INT, taxi_in INT, elapsed_time INT, distance INT)"
    )
    db.execute("CREATE SAMPLE S AS (SELECT * FROM Flights)")
    db.ingest_relation("S", population)
    db.execute(CLOSED_SQL)  # prime plan caches
    return db


def sliced_insert_statements() -> list[str]:
    statements = []
    for start in range(0, SLICED_ROWS, SLICED_BATCH):
        values = ", ".join(
            f"('g{i % 8}', {i})" for i in range(start, start + SLICED_BATCH)
        )
        statements.append(f"INSERT INTO T VALUES {values}")
    return statements


def _measure(run, iterations: int) -> dict:
    run()  # warm
    latencies = np.empty(iterations)
    start = time.perf_counter()
    for i in range(iterations):
        t0 = time.perf_counter()
        run()
        latencies[i] = time.perf_counter() - t0
    elapsed = time.perf_counter() - start
    return {
        "qps": round(iterations / elapsed, 2),
        "p50_ms": round(float(np.percentile(latencies * 1000.0, 50)), 4),
        "p99_ms": round(float(np.percentile(latencies * 1000.0, 99)), 4),
    }


def _p50_ms(run, iterations: int) -> float:
    run()
    latencies = np.empty(iterations)
    for i in range(iterations):
        t0 = time.perf_counter()
        run()
        latencies[i] = time.perf_counter() - t0
    return float(np.percentile(latencies * 1000.0, 50))


def assert_identical(received, expected) -> None:
    assert received.columns == expected.columns
    assert received.num_rows == expected.num_rows
    for name in expected.columns:
        mine, theirs = received.column(name), expected.column(name)
        if mine.dtype == object:
            assert list(mine) == list(theirs)
        else:
            assert mine.tobytes() == theirs.tobytes()


class InProcessFleet:
    def __init__(self, shard_count: int):
        self.dbs = [build_flights_db() for _ in range(shard_count)]
        self.servers = [
            MosaicServer(
                db.engine, port=0, session_config=db.session.config, shard_id=index
            ).start_in_thread()
            for index, db in enumerate(self.dbs)
        ]
        self.router = FleetRouter(
            [("127.0.0.1", server.port) for server in self.servers],
            port=0,
            partitions={"T": PartitionSpec("T")},
        ).start_in_thread()
        self.port = self.router.port

    def close(self):
        self.router.stop_in_thread()
        for server in self.servers:
            server.stop_in_thread()


def test_emit_bench_json():
    # Direct-server baseline for the router-overhead comparison.
    reference_db = build_flights_db()
    reference_server = MosaicServer(
        reference_db.engine, port=0, session_config=reference_db.session.config
    ).start_in_thread()
    try:
        with Connection("127.0.0.1", reference_server.port) as direct:
            direct_p50 = _p50_ms(lambda: direct.execute(CLOSED_SQL), OVERHEAD_ITERS)
            reference_closed = direct.execute(CLOSED_SQL)
    finally:
        reference_server.stop_in_thread()

    # The sliced-aggregate reference answer comes from one plain engine
    # holding every row of T.
    reference_sliced_db = MosaicDB(seed=0)
    reference_sliced_db.execute("CREATE TEMPORARY TABLE T (name TEXT, n INT)")
    for statement in sliced_insert_statements():
        reference_sliced_db.execute(statement)
    reference_scatter = reference_sliced_db.execute(SCATTER_SQL)

    fleets: dict[str, dict] = {}
    router_overhead_p50 = None
    for shard_count in SHARD_COUNTS:
        fleet = InProcessFleet(shard_count)
        try:
            with Connection("127.0.0.1", fleet.port) as conn:
                conn.execute("CREATE TEMPORARY TABLE T (name TEXT, n INT)")
                for statement in sliced_insert_statements():
                    conn.execute(statement)

                # Bit-identity on both read paths before timing anything.
                assert_identical(conn.execute(CLOSED_SQL), reference_closed)
                assert_identical(conn.execute(SCATTER_SQL), reference_scatter)

                replicated = _measure(
                    lambda: conn.execute(CLOSED_SQL), REPLICATED_ITERS
                )
                scatter = _measure(
                    lambda: conn.execute(SCATTER_SQL), SCATTER_ITERS
                )
                if shard_count == 1:
                    router_overhead_p50 = replicated["p50_ms"] - direct_p50
            fleets[str(shard_count)] = {
                "replicated": replicated,
                "scatter": scatter,
            }
        finally:
            fleet.close()

    payload = {
        "workload": (
            f"flights rows={CONFIG.rows} cached CLOSED routed whole-query; "
            f"sliced T rows={SLICED_ROWS} scatter/gather COUNT+SUM+AVG"
        ),
        "cpu_count": os.cpu_count(),
        "direct_p50_ms": round(direct_p50, 4),
        "router_overhead_p50_ms": round(router_overhead_p50, 4),
        "fleet": fleets,
        "bit_identical": True,  # asserted above for every fleet size
    }
    out_path = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    # Acceptance: fronting one shard with the router should cost < 2 ms
    # of p50 over talking to that shard directly.
    budget = float(os.environ.get("MOSAIC_FLEET_OVERHEAD_BUDGET_MS", "2.0"))
    assert router_overhead_p50 < budget, (
        f"router p50 overhead {router_overhead_p50:.3f} ms exceeds "
        f"{budget:.1f} ms (direct {direct_p50:.3f} ms)"
    )
