"""Bench: regenerate Figure 7 left (flights queries 1-4, Unif/IPF/M-SWG)."""

import numpy as np

from repro.experiments import figure7


def test_figure7_continuous(run_once):
    result = run_once(figure7.run, figure7.quick_config("continuous"))
    print()
    print(result.render())

    rows = {row["query"]: row for row in result.rows}

    # Paper's shape 1: "all methods achieve an average error of less than
    # 25 percent" — at our reduced training scale we allow 50 %.
    for row in result.rows:
        for method in ("Unif", "IPF", "M-SWG"):
            assert np.isnan(row[method]) or row[method] < 50.0

    # Paper's shape 2 (the "surprising" finding): M-SWG has its *worst*
    # error on query 1, whose predicate matches the sampling bias, while
    # Unif is nearly exact there.
    assert rows["1"]["Unif"] < 5.0
    mswg_errors = {qid: row["M-SWG"] for qid, row in rows.items()}
    assert mswg_errors["1"] == max(mswg_errors.values())

    # Paper's shape 3: Unif's worst continuous query is query 3 (the
    # distance<->elapsed-time correlation the bias distorts).
    unif_errors = {qid: row["Unif"] for qid, row in rows.items()}
    assert unif_errors["3"] == max(unif_errors.values())

    # Debiasing helps overall: IPF beats Unif on average.
    assert result.params["mean_IPF"] < result.params["mean_Unif"]
