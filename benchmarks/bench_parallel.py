"""Bench: morsel-driven multi-process execution over shared-memory relations.

Measures the worker pool (``repro.core.workers``) on the two workloads it
exists for:

- **CLOSED scan + grouped aggregate** over a large flights sample: the
  engine splits the scan into row-range morsels, workers attach the
  shared segment (zero row serialization) and ship back partial
  aggregates.
- **Batched OPEN** over a categorical population: the single composite
  pass shards across repetitions on the same pool.

Each worker count gets its own engine; ``0`` is the serial reference
(identical morsel decomposition, in-process loop).  Bit-identity between
serial and every parallel configuration is asserted *in-bench* — a
speedup that changes answers is a bug, not a result.

``test_emit_bench_json`` writes ``BENCH_parallel.json`` for the CI perf
trajectory.  Process scaling is hardware-dependent, so the payload
records ``cpu_count`` honestly and the gate skips scaling metrics when
core counts differ: on a multi-core box (>= 4 cores) the acceptance bar
is >= 2x at 4 workers; on a single-core box it is parallel overhead
<= 20% (the pool cannot beat serial without cores to run on, but shared
memory + morsel batching must keep the tax small).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import MosaicDB
from repro.catalog.metadata import Marginal
from repro.core.workers import ExecutionConfig
from repro.engine.open_world import IPFSynthesizer, OpenQueryConfig
from repro.relational.dtypes import DType
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.workloads.flights import FlightsConfig, make_flights_population

ROWS = 160_000
MORSEL_ROWS = 16_384
WORKER_COUNTS = (0, 1, 2, 4, 8)
CLOSED_ITERATIONS = 12
OPEN_ITERATIONS = 4
OPEN_REPETITIONS = 8
OPEN_ROWS_PER_GENERATION = 25_000

CLOSED_SQL = (
    "SELECT CLOSED carrier, COUNT(*) AS n, SUM(distance) AS s, "
    "AVG(elapsed_time) AS a, MIN(taxi_out) AS mn, MAX(distance) AS mx "
    "FROM Flights WHERE distance > 200 GROUP BY carrier ORDER BY carrier"
)
OPEN_SQL = (
    "SELECT OPEN country, email, COUNT(*) AS n "
    "FROM Migrants GROUP BY country, email ORDER BY country, email"
)


def _flights_sample() -> Relation:
    return make_flights_population(
        FlightsConfig(rows=ROWS), np.random.default_rng(0)
    )


def _migrants_sample(rows: int = 50_000) -> Relation:
    rng = np.random.default_rng(1)
    countries = ["DE", "FR", "PL", "UK"]
    emails = ["AOL", "GMX", "Yahoo"]
    schema = Schema.of(country=DType.TEXT, email=DType.TEXT)
    return Relation.from_columns(
        schema,
        {
            "country": [countries[i] for i in rng.integers(0, 4, rows)],
            "email": [emails[i] for i in rng.integers(0, 3, rows)],
        },
    )


def build_db(processes: int, flights: Relation) -> MosaicDB:
    """A fully loaded flights engine with ``processes`` pool workers."""
    db = MosaicDB(
        seed=0,
        open_config=OpenQueryConfig(
            generator_factory=IPFSynthesizer,
            repetitions=OPEN_REPETITIONS,
            rows_per_generation=OPEN_ROWS_PER_GENERATION,
            max_workers=1,
        ),
        execution=ExecutionConfig(processes=processes, morsel_rows=MORSEL_ROWS),
    )
    db.execute_script(
        """
        CREATE GLOBAL POPULATION Flights
            (carrier TEXT, taxi_out INT, taxi_in INT, elapsed_time INT, distance INT);
        CREATE SAMPLE S AS (SELECT * FROM Flights);
        """
    )
    db.ingest_relation("S", flights)
    return db


def build_open_db(processes: int, migrants: Relation) -> MosaicDB:
    db = MosaicDB(
        seed=0,
        open_config=OpenQueryConfig(
            generator_factory=IPFSynthesizer,
            repetitions=OPEN_REPETITIONS,
            rows_per_generation=OPEN_ROWS_PER_GENERATION,
            max_workers=1,
        ),
        execution=ExecutionConfig(processes=processes, morsel_rows=MORSEL_ROWS),
    )
    db.execute_script(
        """
        CREATE GLOBAL POPULATION Migrants (country TEXT, email TEXT);
        CREATE SAMPLE M AS (SELECT * FROM Migrants);
        """
    )
    db.register_marginal(
        "M_C",
        "Migrants",
        Marginal(
            ["country"],
            {("DE",): 400_000, ("FR",): 250_000, ("PL",): 150_000, ("UK",): 200_000},
        ),
    )
    db.register_marginal(
        "M_E",
        "Migrants",
        Marginal(["email"], {("AOL",): 200_000, ("GMX",): 350_000, ("Yahoo",): 450_000}),
    )
    db.ingest_relation("M", migrants)
    return db


def assert_identical(received: Relation, expected: Relation) -> None:
    assert list(received.column_names) == list(expected.column_names)
    assert received.num_rows == expected.num_rows
    for name in expected.column_names:
        mine, theirs = received.column(name), expected.column(name)
        assert mine.dtype == theirs.dtype, name
        if mine.dtype == object:
            assert list(mine) == list(theirs), name
        else:
            assert mine.tobytes() == theirs.tobytes(), name


def _qps(run, iterations: int) -> float:
    run()  # warm caches (plans, reweights, generator fits, worker plans)
    start = time.perf_counter()
    for _ in range(iterations):
        run()
    return iterations / (time.perf_counter() - start)


def test_emit_bench_json():
    """CLOSED + OPEN qps at 0/1/2/4/8 workers, bit-identity asserted."""
    flights = _flights_sample()
    migrants = _migrants_sample()

    closed_qps: dict[str, float] = {}
    open_qps: dict[str, float] = {}
    closed_reference = None
    open_reference = None
    pool_stats = {}
    closed_pool_stats = {}

    for workers in WORKER_COUNTS:
        db = build_db(workers, flights)
        try:
            closed = db.execute(CLOSED_SQL).relation
            if closed_reference is None:
                closed_reference = closed
            else:
                assert_identical(closed, closed_reference)
            closed_qps[str(workers)] = round(
                _qps(lambda: db.execute(CLOSED_SQL), CLOSED_ITERATIONS), 2
            )
            if workers >= 1:
                stats = db.engine.execution.stats()
                assert stats["parallel_batches"] >= 1, stats
                # Repeated queries over an unchanged relation must reattach
                # the existing shared segment (stable (relation, version)
                # share keys), not re-export the rows every time.
                assert stats["segment_reuses"] > 0, stats
                closed_pool_stats = stats
        finally:
            db.close()

        open_db = build_open_db(workers, migrants)
        try:
            # The k-th OPEN execution consumes the k-th session RNG draw,
            # so comparing first executions across engines is exact.
            opened = open_db.execute(OPEN_SQL).relation
            if open_reference is None:
                open_reference = opened
            else:
                assert_identical(opened, open_reference)
            open_qps[str(workers)] = round(
                _qps(lambda: open_db.execute(OPEN_SQL), OPEN_ITERATIONS), 2
            )
            if workers == max(WORKER_COUNTS):
                pool_stats = open_db.engine.execution.stats()
        finally:
            open_db.close()

    cpu_count = os.cpu_count() or 1
    serial = closed_qps["0"]
    payload = {
        "workload": (
            f"flights rows={ROWS} CLOSED grouped aggregate; "
            f"migrants OPEN batched x{OPEN_REPETITIONS} reps "
            f"x{OPEN_ROWS_PER_GENERATION} rows"
        ),
        "cpu_count": cpu_count,
        "morsel_rows": MORSEL_ROWS,
        "closed_qps_by_workers": closed_qps,
        "open_qps_by_workers": open_qps,
        "closed_speedup_4w_over_serial": round(closed_qps["4"] / serial, 3),
        "closed_overhead_pct_2w": round(
            max(0.0, (serial - closed_qps["2"]) / serial * 100.0), 1
        ),
        "open_speedup_4w_over_serial": round(
            open_qps["4"] / open_qps["0"], 3
        ),
        "bit_identical": True,  # asserted above for every configuration
        "pool_stats_8w_open": pool_stats,
        "pool_stats_8w_closed": closed_pool_stats,
    }
    out_path = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    # Acceptance: scaling on real cores, bounded overhead without them.
    if cpu_count >= 4:
        assert closed_qps["4"] >= 2.0 * serial, payload
    else:
        assert payload["closed_overhead_pct_2w"] <= 20.0, payload


@pytest.mark.parametrize("workers", [2])
def test_parallel_smoke(workers):
    """Cheap correctness smoke for CI paths that skip the full emit."""
    flights = _flights_sample()
    db_serial = build_db(0, flights)
    db_parallel = build_db(workers, flights)
    try:
        assert_identical(
            db_parallel.execute(CLOSED_SQL).relation,
            db_serial.execute(CLOSED_SQL).relation,
        )
        assert db_parallel.engine.execution.stats()["parallel_batches"] >= 1
    finally:
        db_serial.close()
        db_parallel.close()
