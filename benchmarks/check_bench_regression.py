"""CI perf gate: fail when a tracked engine metric regresses beyond 2x.

Usage::

    python benchmarks/check_bench_regression.py BASELINE.json CURRENT.json

``BASELINE.json`` is the committed ``BENCH_engine.json`` (CI snapshots it
before the benchmark step overwrites the file); ``CURRENT.json`` is the
freshly emitted payload.  A metric regresses when ``current > factor *
baseline``; metrics missing from the baseline (first PR that introduces
them) are skipped.  The 2x factor absorbs runner jitter while still
catching the order-of-magnitude slowdowns that matter (an accidentally
re-introduced per-row Python loop is 10-20x).

Caveat: the baseline is produced on whatever machine last committed
``BENCH_engine.json``, so a CI runner class that is genuinely >2x slower
than that machine trips the gate without a code regression.  If that
happens, either refresh the committed baseline from a CI artifact or
widen the factor via the ``BENCH_REGRESSION_FACTOR`` environment
variable rather than deleting the gate.
"""

from __future__ import annotations

import json
import os
import sys

# Latency metrics (lower is better) gated against the committed baseline.
TRACKED_METRICS = (
    "grouped_aggregate_30k_ms",
    "filter_grouped_30k_ms",
)
DEFAULT_FACTOR = 2.0


def check(baseline: dict, current: dict, factor: float = DEFAULT_FACTOR) -> list[str]:
    failures = []
    for metric in TRACKED_METRICS:
        base = baseline.get(metric)
        now = current.get(metric)
        if base is None:
            print(f"  {metric}: no committed baseline, skipping")
            continue
        if now is None:
            failures.append(f"{metric}: missing from current payload")
            continue
        verdict = "ok" if now <= factor * base else f"REGRESSED (> {factor}x)"
        print(f"  {metric}: {base:.4f} ms -> {now:.4f} ms  [{verdict}]")
        if now > factor * base:
            failures.append(
                f"{metric} regressed: {base:.4f} ms -> {now:.4f} ms "
                f"(allowed up to {factor:.1f}x = {factor * base:.4f} ms)"
            )
    return failures


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    with open(argv[1]) as handle:
        baseline = json.load(handle)
    with open(argv[2]) as handle:
        current = json.load(handle)
    factor = float(os.environ.get("BENCH_REGRESSION_FACTOR", DEFAULT_FACTOR))
    print(f"perf gate: {argv[2]} vs baseline {argv[1]} (factor {factor:.1f}x)")
    failures = check(baseline, current, factor)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
