"""CI perf gate: fail when a tracked benchmark metric regresses beyond 2x.

Usage::

    python benchmarks/check_bench_regression.py BASELINE.json CURRENT.json \
        [BASELINE2.json CURRENT2.json ...]

Each ``(baseline, current)`` pair is one benchmark payload: the committed
snapshot (CI copies it aside before the benchmark step overwrites the
file) versus the freshly emitted one.  Which metrics are gated is keyed
on the *current* file's basename (:data:`TRACKED_METRICS`); metric names
may be dotted paths into nested payloads (``levels.1.p50_ms``).

A latency metric regresses when ``current > factor * baseline``; a
throughput (scaling) metric when ``current < baseline / factor``
(:data:`SCALING_METRICS`) — and scaling metrics are skipped wholesale
when the two payloads report different ``cpu_count`` values, because
parallel throughput across core counts is not comparable.  Everything else
is a clearly reported **skip**, never a crash: a baseline file that does
not exist yet (first PR introducing the payload), a metric missing from
the baseline (first PR introducing the metric), or a payload with no
tracked metrics at all.  Only a tracked metric that is present in the
baseline but *missing from the current payload* fails — that means the
benchmark silently stopped emitting it.

The 2x factor absorbs runner jitter while still catching the
order-of-magnitude slowdowns that matter (an accidentally re-introduced
per-row Python loop is 10-20x).

Caveat: baselines are produced on whatever machine last committed them,
so a CI runner class genuinely >2x slower trips the gate without a code
regression.  If that happens, refresh the committed baseline from a CI
artifact or widen the factor via ``BENCH_REGRESSION_FACTOR`` rather than
deleting the gate.
"""

from __future__ import annotations

import json
import os
import sys

#: Latency metrics (lower is better), keyed by payload basename.  Dotted
#: names traverse nested objects; integer-looking segments index dicts
#: with string keys (the JSON round-trip stringifies them).
TRACKED_METRICS: dict[str, tuple[str, ...]] = {
    "BENCH_engine.json": (
        "grouped_aggregate_30k_ms",
        "filter_grouped_30k_ms",
        "semi_open_cold_ms",
    ),
    "BENCH_server.json": (
        "levels.1.p50_ms",
        "levels.8.p50_ms",
        "levels.32.p50_ms",
    ),
    "BENCH_open.json": (
        "open_cold_ms",
        "open_cached_ms",
        "adaptive_open_ms",
        "generators.bayesnet.generate_ms",
        "generators.ipf-synth.generate_ms",
    ),
    # Not gated: router_overhead_p50_ms — a difference of two p50s is too
    # jittery for a ratio gate; bench_fleet.py asserts its absolute <2 ms
    # budget on every run instead.
    "BENCH_fleet.json": (
        "fleet.1.replicated.p50_ms",
        "fleet.2.scatter.p50_ms",
    ),
    # Not gated: cold_ingest_fit_ms (dominated by the generator fit,
    # already tracked via BENCH_open.json) and the reopen-scaling ratio
    # (bench_storage.py asserts its absolute sub-linearity budget on
    # every run).  The >= 10x warm speedup and the 10% mmap-scan tax are
    # likewise asserted in-bench; the gate tracks their trajectories.
    "BENCH_storage.json": (
        "warm_reopen_ms",
        "mmap_closed_p50_ms",
    ),
}

#: Throughput metrics (higher is better), keyed by payload basename.
#: Parallel scaling is a property of the hardware as much as the code, so
#: these are only compared when the baseline and the current payload
#: report the same ``cpu_count`` — a 1-core runner can never reproduce a
#: 16-core baseline, and vice versa.
SCALING_METRICS: dict[str, tuple[str, ...]] = {
    "BENCH_parallel.json": (
        "closed_qps_by_workers.0",
        "closed_qps_by_workers.2",
        "closed_qps_by_workers.4",
        "open_qps_by_workers.0",
        "open_qps_by_workers.2",
        "open_qps_by_workers.4",
    ),
    "BENCH_fleet.json": (
        "fleet.1.replicated.qps",
        "fleet.2.replicated.qps",
        "fleet.4.replicated.qps",
        "fleet.2.scatter.qps",
        "fleet.4.scatter.qps",
    ),
}
DEFAULT_FACTOR = 2.0

#: The PR 9 always-on tracing budget, gated on the *current* payload
#: alone (no baseline needed): CLOSED p50 with the default 1-in-64
#: sampler must stay within ``MOSAIC_TRACING_OVERHEAD_BUDGET_PCT``
#: (default 3%) of the tracing-off p50, with a 0.05 ms absolute floor so
#: sub-ms latencies cannot flake the gate on timer jitter.
TRACING_BUDGET_PCT = 3.0
TRACING_NOISE_FLOOR_MS = 0.05


def lookup(payload: dict, dotted: str):
    """Resolve a dotted metric path; ``None`` when any segment is missing."""
    node = payload
    for segment in dotted.split("."):
        if not isinstance(node, dict) or segment not in node:
            return None
        node = node[segment]
    return node if isinstance(node, (int, float)) else None


def check(
    baseline: dict,
    current: dict,
    factor: float = DEFAULT_FACTOR,
    metrics: tuple[str, ...] = TRACKED_METRICS["BENCH_engine.json"],
) -> list[str]:
    failures = []
    for metric in metrics:
        base = lookup(baseline, metric)
        now = lookup(current, metric)
        if base is None:
            # First PR emitting this metric: nothing committed to compare
            # against yet.  Report the skip loudly instead of a KeyError.
            print(f"  {metric}: metric missing from baseline, skipping")
            continue
        if now is None:
            failures.append(f"{metric}: missing from current payload")
            continue
        verdict = "ok" if now <= factor * base else f"REGRESSED (> {factor}x)"
        print(f"  {metric}: {base:.4f} ms -> {now:.4f} ms  [{verdict}]")
        if now > factor * base:
            failures.append(
                f"{metric} regressed: {base:.4f} ms -> {now:.4f} ms "
                f"(allowed up to {factor:.1f}x = {factor * base:.4f} ms)"
            )
    return failures


def check_scaling(
    baseline: dict,
    current: dict,
    factor: float = DEFAULT_FACTOR,
    metrics: tuple[str, ...] = SCALING_METRICS["BENCH_parallel.json"],
) -> list[str]:
    """Gate higher-is-better throughput metrics, honestly about hardware.

    A metric regresses when ``current < baseline / factor``.  When the
    committed baseline and the current payload report different
    ``cpu_count`` values, every scaling metric is skipped with a clear
    message instead of failing: parallel throughput measured on different
    core counts is not comparable, and the payload records ``cpu_count``
    exactly so this gate can tell.
    """
    base_cpus = baseline.get("cpu_count")
    now_cpus = current.get("cpu_count")
    if base_cpus != now_cpus:
        print(
            f"  cpu_count differs (baseline {base_cpus}, current {now_cpus}); "
            "parallel-scaling metrics are machine-bound, skipping them all"
        )
        return []
    failures = []
    for metric in metrics:
        base = lookup(baseline, metric)
        now = lookup(current, metric)
        if base is None:
            print(f"  {metric}: metric missing from baseline, skipping")
            continue
        if now is None:
            failures.append(f"{metric}: missing from current payload")
            continue
        floor = base / factor
        verdict = "ok" if now >= floor else f"REGRESSED (< 1/{factor:.1f}x)"
        print(f"  {metric}: {base:.2f} qps -> {now:.2f} qps  [{verdict}]")
        if now < floor:
            failures.append(
                f"{metric} regressed: {base:.2f} qps -> {now:.2f} qps "
                f"(allowed down to 1/{factor:.1f}x = {floor:.2f} qps)"
            )
    return failures


def check_tracing_overhead(current: dict) -> list[str]:
    """Gate the always-on tracing overhead in ``BENCH_server.json``.

    This is an absolute budget on the current payload, not a baseline
    ratio: a difference of two p50s is too jittery for the 2x gate, but
    the <3% product promise must hold on every run.  A payload emitted
    before the tracing fields existed (or a benchmark that silently
    stopped emitting them) is a loud skip, not a crash.
    """
    on = lookup(current, "closed_p50_tracing_on_ms")
    off = lookup(current, "closed_p50_tracing_off_ms")
    if on is None or off is None or off <= 0:
        print(
            "  tracing overhead: closed_p50_tracing_{on,off}_ms missing from "
            "the payload — SKIPPING the tracing budget gate (re-run "
            "bench_server.py to emit them)"
        )
        return []
    budget_pct = float(
        os.environ.get("MOSAIC_TRACING_OVERHEAD_BUDGET_PCT", TRACING_BUDGET_PCT)
    )
    allowed = max(budget_pct / 100.0 * off, TRACING_NOISE_FLOOR_MS)
    delta = on - off
    verdict = "ok" if delta < allowed else f"OVER BUDGET (>= {budget_pct:.1f}%)"
    print(
        f"  tracing overhead: off {off:.4f} ms -> on {on:.4f} ms "
        f"(+{delta:.4f} ms, allowed {allowed:.4f} ms)  [{verdict}]"
    )
    if delta >= allowed:
        return [
            f"tracing overhead {delta:.4f} ms exceeds {budget_pct:.1f}% of the "
            f"untraced CLOSED p50 ({off:.4f} ms; allowed {allowed:.4f} ms)"
        ]
    return []


def check_pair(baseline_path: str, current_path: str, factor: float) -> list[str]:
    name = os.path.basename(current_path)
    metrics = TRACKED_METRICS.get(name)
    scaling = SCALING_METRICS.get(name)
    print(f"perf gate: {current_path} vs baseline {baseline_path} (factor {factor:.1f}x)")
    if metrics is None and scaling is None:
        print(f"  no tracked metrics for {name}, skipping")
        return []
    failures: list[str] = []
    with open(current_path) as handle:
        current = json.load(handle)
    if name == "BENCH_server.json":
        # Absolute gate: needs only the current payload.
        failures.extend(check_tracing_overhead(current))
    if not os.path.exists(baseline_path):
        print(f"  no committed baseline at {baseline_path} yet, skipping")
        return failures
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    if metrics is not None:
        failures.extend(check(baseline, current, factor, metrics))
    if scaling is not None:
        failures.extend(check_scaling(baseline, current, factor, scaling))
    return failures


def main(argv: list[str]) -> int:
    paths = argv[1:]
    if not paths or len(paths) % 2 != 0:
        print(__doc__)
        return 2
    factor = float(os.environ.get("BENCH_REGRESSION_FACTOR", DEFAULT_FACTOR))
    failures: list[str] = []
    for position in range(0, len(paths), 2):
        failures.extend(check_pair(paths[position], paths[position + 1], factor))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
