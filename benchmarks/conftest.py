"""Shared benchmark helpers.

Experiment benchmarks run exactly once per session (rounds=1): each one
trains models / rakes weights, so classic multi-round timing would be
prohibitively slow and adds nothing — the interesting output is the
regenerated table/figure, which every bench asserts the *shape* of.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
