"""Bench: OPEN-world end-to-end latency and per-generator hot paths.

The OPEN pipeline — fit a generator, draw ``repetitions`` synthetic
samples, answer the query on each, combine — is the most expensive path
in the system (paper Sec. 5.3).  This bench tracks it per PR:

- ``open_cold_ms`` — full cold query on the flights workload with the
  Bayesian-network generator: fit (discretise + IPF rake + Chow-Liu +
  CPTs) plus ``repetitions=5`` generations of 30k rows each, batched
  execution, combine.
- ``open_cached_ms`` — same query on a warm generator cache: one
  ``generate_batch`` + one composite-code execution + combine.
- per-generator ``fit_ms`` / ``generate_ms`` at ``repetitions=5`` for all
  three bundled generators (M-SWG uses a deliberately tiny training
  config: the bench tracks the generation/encoding machinery, not
  gradient descent).

``PRE_PR`` pins the same measurements taken at commit c0084e2 (the last
commit before batched OPEN execution landed) on the dev container that
produced the committed baselines, so ``BENCH_open.json`` records the
speedup of the batched single-pass path against the per-repetition loop
it replaced.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro import MosaicDB
from repro.engine.open_world import (
    BayesNetGenerator,
    IPFSynthesizer,
    MswgGenerator,
    OpenQueryConfig,
)
from repro.generative.mswg import MswgConfig
from repro.workloads.flights import (
    FlightsConfig,
    bucket_flights,
    flights_marginals,
    make_biased_flights_sample,
    make_flights_population,
)
from repro.workloads.migrants import (
    MigrantsConfig,
    make_migrants_population,
    migrants_marginals,
)

CONFIG = FlightsConfig(rows=30_000)
REPETITIONS = 5
GENERATION_ROWS = 30_000  # population-scale generation (light hitters survive)
OPEN_SQL = (
    "SELECT OPEN carrier, AVG(distance) AS d, COUNT(*) AS n "
    "FROM Flights GROUP BY carrier"
)

#: Adaptive streaming comparison: a fixed-R run at this cap versus an
#: adaptive stream over the same cap that stops when every carrier's CI
#: half-width is within the relative tolerance.
ADAPTIVE_CAP = 20
ADAPTIVE_TOLERANCE = 0.1
ADAPTIVE_CHUNK = 4

#: Measured at commit c0084e2 (pre-batched-OPEN main) with this exact
#: workload on the container that produced the committed baselines.
PRE_PR = {
    "open_cold_ms": 301.714,
    "open_cached_ms": 128.9645,
    "generators": {
        "mswg": {"fit_ms": 165.6085, "generate_ms": 243.7001},
        "bayesnet": {"fit_ms": 169.4773, "generate_ms": 123.4018},
        "ipf-synth": {"fit_ms": 13.7299, "generate_ms": 8.7317},
    },
}


def tiny_mswg_config() -> MswgConfig:
    return MswgConfig(
        epochs=3,
        hidden_layers=2,
        hidden_units=32,
        num_projections=16,
        batch_size=256,
        latent_dim=2,
    )


def make_flights_db(population, **open_kwargs) -> MosaicDB:
    open_kwargs.setdefault("repetitions", REPETITIONS)
    db = MosaicDB(
        seed=0,
        open_config=OpenQueryConfig(
            generator_factory=BayesNetGenerator,
            rows_per_generation=GENERATION_ROWS,
            max_workers=1,
            **open_kwargs,
        ),
    )
    db.execute(
        "CREATE GLOBAL POPULATION Flights "
        "(carrier TEXT, taxi_out INT, taxi_in INT, elapsed_time INT, distance INT)"
    )
    db.execute("CREATE SAMPLE S AS (SELECT * FROM Flights)")
    sample, _, _ = make_biased_flights_sample(population, CONFIG, db.rng)
    db.ingest_relation("S", bucket_flights(sample, CONFIG))
    for marginal in flights_marginals(population, CONFIG):
        db.register_marginal(marginal.name, "Flights", marginal)
    return db


@pytest.fixture(scope="module")
def flights_population():
    return make_flights_population(CONFIG, np.random.default_rng(0))


@pytest.fixture(scope="module")
def flights_world(flights_population):
    population = flights_population
    db = make_flights_db(population)
    fit_sample, _, _ = make_biased_flights_sample(
        population, CONFIG, np.random.default_rng(1)
    )
    return db, bucket_flights(fit_sample, CONFIG), flights_marginals(population, CONFIG)


@pytest.fixture(scope="module")
def migrants_world():
    rng = np.random.default_rng(0)
    population = make_migrants_population(MigrantsConfig(), rng)
    yahoo = population.filter(
        np.asarray([e == "Yahoo" for e in population.column("email")], dtype=bool)
    )
    keep = rng.choice(yahoo.num_rows, size=yahoo.num_rows // 4, replace=False)
    return yahoo.take(np.sort(keep)), migrants_marginals(population)


def _time_best_of(fn, repetitions: int) -> float:
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def _generate_rounds(generator) -> None:
    """One OPEN generation workload: repetitions x GENERATION_ROWS rows.

    Uses ``generate_batch`` (all bundled generators have it); the same
    helper ran the per-repetition loop when this bench was pointed at
    pre-PR main to produce :data:`PRE_PR`.
    """
    generate_batch = getattr(generator, "generate_batch", None)
    if generate_batch is not None:
        generate_batch(GENERATION_ROWS, REPETITIONS, rng=np.random.default_rng(7))
        return
    from repro.generative.streams import repetition_streams

    for stream in repetition_streams(np.random.default_rng(7), REPETITIONS):
        generator.generate(GENERATION_ROWS, rng=stream)


def test_open_cold_latency(run_once, flights_world):
    db, _, _ = flights_world

    def cold():
        db.clear_caches()
        return db.execute(OPEN_SQL)

    result = run_once(cold)
    assert result.num_rows > 0
    assert result.has_note("composite (rep, group) codes")


def test_open_cached_latency(benchmark, flights_world):
    db, _, _ = flights_world
    db.execute(OPEN_SQL)  # prime the generator + plan caches
    result = benchmark(db.execute, OPEN_SQL)
    assert result.has_note("generator cache hit")


def _adaptive_section(population) -> dict:
    """Fixed-R versus adaptive streaming at the same repetition cap.

    Both runs share the cap (``ADAPTIVE_CAP``) and the workload; the
    adaptive stream stops once every carrier's CI half-width is within
    ``ADAPTIVE_TOLERANCE`` of its running mean.  The section also verifies
    the reported CI half-widths against the sample std of a 10x
    oversampled reference run (same session seed, so the reference's
    repetition streams extend the adaptive run's prefix).
    """
    fixed_db = make_flights_db(population, repetitions=ADAPTIVE_CAP)
    adaptive_db = make_flights_db(
        population,
        repetitions=ADAPTIVE_CAP,
        tolerance=ADAPTIVE_TOLERANCE,
        chunk_repetitions=ADAPTIVE_CHUNK,
    )

    def fixed_cold():
        fixed_db.clear_caches()
        fixed_db.execute(OPEN_SQL)

    last_adaptive = {}

    def adaptive_cold():
        adaptive_db.clear_caches()
        last_adaptive["result"] = adaptive_db.execute(OPEN_SQL)

    fixed_r_open_ms = _time_best_of(fixed_cold, 3)
    adaptive_open_ms = _time_best_of(adaptive_cold, 3)
    adaptive_result = last_adaptive["result"]
    assert adaptive_result.has_note("adaptive streaming")
    assert adaptive_result.has_note("stopped early"), (
        "bench workload must meet the tolerance before the repetition cap"
    )
    repetitions_used = adaptive_result.repetitions_used

    # CI verification: the adaptive half-widths must agree with a 10x
    # oversampled reference's sample std (z * std_ref / sqrt(used)).
    ci_db = make_flights_db(
        population,
        repetitions=ADAPTIVE_CAP,
        tolerance=ADAPTIVE_TOLERANCE,
        chunk_repetitions=ADAPTIVE_CHUNK,
        report_ci=True,
    )
    ci_result = ci_db.execute(OPEN_SQL)
    used = ci_result.repetitions_used
    reference_db = make_flights_db(
        population, repetitions=10 * used, report_ci=True
    )
    reference = reference_db.execute(OPEN_SQL)
    ref_std = {
        row["carrier"]: row["n__std__"] for row in reference.to_pylist()
    }
    ratios = []
    for row in ci_result.to_pylist():
        sigma = ref_std.get(row["carrier"])
        if sigma is None or sigma == 0.0:
            continue
        expected_half = 1.96 * sigma / np.sqrt(used)
        ratios.append(row["n__ci__"] / expected_half)
    assert ratios, "no overlapping carriers between adaptive and reference runs"
    assert all(1 / 3 <= ratio <= 3 for ratio in ratios), (
        f"adaptive CI half-widths disagree with the oversampled reference: {ratios}"
    )
    assert fixed_r_open_ms >= 1.5 * adaptive_open_ms, (
        f"adaptive streaming must be >=1.5x faster than fixed-R at the cap: "
        f"fixed {fixed_r_open_ms:.1f} ms vs adaptive {adaptive_open_ms:.1f} ms"
    )

    return {
        "cap": ADAPTIVE_CAP,
        "tolerance": ADAPTIVE_TOLERANCE,
        "chunk_repetitions": ADAPTIVE_CHUNK,
        "fixed_r_open_ms": round(fixed_r_open_ms, 4),
        "adaptive_open_ms": round(adaptive_open_ms, 4),
        "repetitions_used": repetitions_used,
        "peak_batch_rows": ADAPTIVE_CHUNK * GENERATION_ROWS,
        "fixed_peak_batch_rows": ADAPTIVE_CAP * GENERATION_ROWS,
        "adaptive_speedup_vs_fixed_r": round(
            fixed_r_open_ms / adaptive_open_ms, 2
        ),
        "ci_vs_oversampled_max_ratio": round(max(ratios), 4),
        "ci_vs_oversampled_min_ratio": round(min(ratios), 4),
    }


def test_emit_bench_json(flights_world, flights_population, migrants_world):
    """Write BENCH_open.json: the OPEN perf trail with pre-PR speedups."""
    db, fit_sample, fit_marginals = flights_world
    migrants_sample, migrants_marginal_list = migrants_world

    def cold():
        db.clear_caches()
        db.execute(OPEN_SQL)

    open_cold_ms = _time_best_of(cold, 3)
    db.execute(OPEN_SQL)  # prime
    open_cached_ms = _time_best_of(lambda: db.execute(OPEN_SQL), 5)

    generators = {}
    for name, factory, (sample, marginals) in (
        ("mswg", lambda: MswgGenerator(tiny_mswg_config()), (fit_sample, fit_marginals)),
        ("bayesnet", BayesNetGenerator, (fit_sample, fit_marginals)),
        (
            "ipf-synth",
            IPFSynthesizer,
            (migrants_sample, migrants_marginal_list),
        ),
    ):
        generator = factory()
        start = time.perf_counter()
        generator.fit(sample, marginals)
        fit_ms = (time.perf_counter() - start) * 1000.0
        generate_ms = _time_best_of(lambda: _generate_rounds(generator), 3)
        generators[name] = {
            "fit_ms": round(fit_ms, 4),
            "generate_ms": round(generate_ms, 4),
        }

    adaptive = _adaptive_section(flights_population)
    adaptive_open_ms = adaptive.pop("adaptive_open_ms")

    payload = {
        "workload": (
            f"flights rows={CONFIG.rows}, repetitions={REPETITIONS}, "
            f"rows_per_generation={GENERATION_ROWS}, generator=bayesnet"
        ),
        "open_cold_ms": round(open_cold_ms, 4),
        "open_cached_ms": round(open_cached_ms, 4),
        # Top-level so the perf gate can track it alongside open_cold_ms;
        # the full fixed-vs-adaptive comparison lives under "adaptive".
        "adaptive_open_ms": adaptive_open_ms,
        "adaptive": adaptive,
        "generators": generators,
        "pre_pr": PRE_PR,
        "open_cold_speedup_vs_pre_pr": round(PRE_PR["open_cold_ms"] / open_cold_ms, 2),
        "open_cached_speedup_vs_pre_pr": round(
            PRE_PR["open_cached_ms"] / open_cached_ms, 2
        ),
    }
    out_path = Path(__file__).resolve().parent.parent / "BENCH_open.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    assert open_cached_ms <= open_cold_ms
