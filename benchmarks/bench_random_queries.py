"""Bench: the 200-random-query comparison (Sec. 5.3 in-text result).

"all of our M-SWG models achieve a lower query error than Unif. IPF also
achieves a lower error than Unif" — asserted on the not-empty-filtered
random template workload.
"""

from repro.experiments import random_queries


def test_random_queries(run_once):
    result = run_once(random_queries.run, random_queries.quick_config())
    print()
    print(result.render())

    means = {row["method"]: row["mean"] for row in result.rows}
    assert means["IPF"] < means["Unif"]
    assert means["M-SWG"] < means["Unif"]
