"""Microbenchmarks: the numpy NN substrate's hot paths.

Tracks the per-step cost of the generator's forward/backward pass and of
each loss term — the quantities that dominate M-SWG training time.
"""

import numpy as np
import pytest

from repro.generative.losses.coverage import CoveragePenalty
from repro.generative.losses.wasserstein import QuantileMatchingLoss
from repro.generative.nn import BatchNorm1d, Linear, ReLU, Sequential
from repro.generative.optim import Adam


def _paper_flights_network(rng):
    """5 layers x 50 units, 18-wide output — the paper's flights generator."""
    layers = []
    in_features = 18
    for i in range(5):
        layers += [Linear(in_features, 50, rng, name=f"fc{i}"), BatchNorm1d(50), ReLU()]
        in_features = 50
    layers.append(Linear(50, 18, rng, init="xavier"))
    return Sequential(*layers)


def test_forward_backward_step(benchmark):
    rng = np.random.default_rng(0)
    network = _paper_flights_network(rng)
    optimizer = Adam(network.parameters())
    latents = rng.normal(size=(500, 18))
    grad = rng.normal(size=(500, 18))

    def step():
        output = network.forward(latents)
        optimizer.zero_grad()
        network.backward(grad)
        optimizer.step()
        return output

    benchmark(step)


def test_quantile_loss_step(benchmark):
    rng = np.random.default_rng(0)
    loss = QuantileMatchingLoss(rng.normal(size=5_000), None, batch_size=500)
    x = rng.normal(size=500)
    benchmark(loss.loss_and_grad, x)


@pytest.mark.parametrize("sample_rows", [1_000, 20_000])
def test_coverage_penalty_step(benchmark, sample_rows):
    rng = np.random.default_rng(0)
    penalty = CoveragePenalty(rng.normal(size=(sample_rows, 18)), lam=1e-7)
    x = rng.normal(size=(500, 18))
    benchmark(penalty.loss_and_grad, x)
