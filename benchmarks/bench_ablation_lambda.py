"""Ablation: the coverage penalty weight λ (Eq. 1's trade-off knob).

"λ is a tuning parameter that trades off between fitting the population
marginals and respecting the structure of the sample data."  Sweep λ on
the spiral: λ=0 fits marginals but may leave the manifold; large λ pins
generation to the biased sample and stops matching the marginals.
"""

import numpy as np

from repro.generative.losses.coverage import CoveragePenalty
from repro.generative.losses.wasserstein import wasserstein_1d
from repro.generative.mswg import MSWG, MswgConfig
from repro.workloads.spiral import (
    SpiralConfig,
    make_biased_spiral_sample,
    make_spiral_population,
    spiral_marginals,
)

SPIRAL = SpiralConfig(population_size=15_000, sample_size=1_500)


def _fit_and_score(lam: float):
    rng = np.random.default_rng(0)
    population = make_spiral_population(SPIRAL, rng)
    sample, _ = make_biased_spiral_sample(population, SPIRAL, rng)
    marginals = spiral_marginals(population, SPIRAL)
    config = MswgConfig(
        hidden_layers=2,
        hidden_units=48,
        latent_dim=2,
        lambda_coverage=lam,
        batch_size=256,
        epochs=15,
        steps_per_epoch=6,
        seed=0,
    )
    model = MSWG(config)
    model.fit(sample, marginals)
    generated = model.generate(1_500, rng=np.random.default_rng(1))
    marginal_w1 = 0.5 * (
        wasserstein_1d(generated.column("x"), population.column("x"))
        + wasserstein_1d(generated.column("y"), population.column("y"))
    )
    # The coverage penalty's own quantity: mean squared distance from each
    # generated point to its nearest sample point.
    sample_xy = np.column_stack([sample.column("x"), sample.column("y")])
    generated_xy = np.column_stack([generated.column("x"), generated.column("y")])
    penalty = CoveragePenalty(sample_xy, lam=1.0)
    mean_nn_distance, _ = penalty.loss_and_grad(generated_xy)
    return marginal_w1, mean_nn_distance


def test_lambda_sweep(benchmark):
    lambdas = [0.0, 0.04, 50.0]
    results = benchmark.pedantic(
        lambda: {lam: _fit_and_score(lam) for lam in lambdas},
        rounds=1,
        iterations=1,
    )
    print()
    for lam, (marginal_w1, nn_distance) in results.items():
        print(
            f"lambda={lam:<5g} marginal_W1={marginal_w1:.4f} "
            f"mean_sq_dist_to_sample={nn_distance:.6f}"
        )
    # Extreme lambda anchors generation to the sample manifold: mean
    # nearest-sample distance shrinks relative to no penalty at all.
    assert results[50.0][1] < results[0.0][1]
    # ...at the cost of fitting the population marginals worse than the
    # paper's lambda=0.04 balance.
    assert results[0.04][0] < results[50.0][0]
