"""Ablation: pluggable OPEN generators (M-SWG vs Bayesian net vs IPF synth).

Sec. 5's claim: "any generative model can be plugged in and used to answer
open queries as long as it can be trained on sample data and marginals."
This bench fits all three shipped generators on the migrants scenario and
scores an OPEN group-by COUNT against ground truth.
"""

import numpy as np
import pytest

from repro.engine.open_world import BayesNetGenerator, IPFSynthesizer, MswgGenerator
from repro.generative.mswg import MswgConfig
from repro.metrics.error import average_percent_difference
from repro.relational.groupby import group_rows
from repro.workloads.migrants import (
    MigrantsConfig,
    make_migrants_population,
    migrants_marginals,
)

CONFIG = MigrantsConfig(
    country_counts={"UK": 4000, "FR": 2000, "DE": 3000, "ES": 1000}
)


def _setup():
    rng = np.random.default_rng(0)
    population = make_migrants_population(CONFIG, rng)
    marginals = migrants_marginals(population)
    yahoo = population.filter(
        np.asarray([e == "Yahoo" for e in population.column("email")])
    )
    truth = {
        key: float(len(idx)) for key, idx in group_rows(population, ["country", "email"])
    }
    return population, yahoo, marginals, truth


def _score(generator, population, sample, marginals, truth):
    generator.fit(sample, marginals)
    rng = np.random.default_rng(1)
    n = population.num_rows
    answers = []
    for _ in range(3):
        generated = generator.generate(n, rng=rng)
        counts = {
            key: float(len(idx)) for key, idx in group_rows(generated, ["country", "email"])
        }
        answers.append(counts)
    common = set(answers[0])
    for answer in answers[1:]:
        common &= set(answer)
    combined = {k: float(np.mean([a[k] for a in answers])) for k in common}
    error = average_percent_difference(combined, truth, policy="penalize_missing")
    coverage = len(set(combined) & set(truth)) / len(truth)
    return error, coverage


@pytest.mark.parametrize(
    "name,factory",
    [
        ("ipf-synth", IPFSynthesizer),
        ("bayesnet", BayesNetGenerator),
        (
            "mswg",
            lambda: MswgGenerator(
                MswgConfig(
                    hidden_layers=2,
                    hidden_units=32,
                    latent_dim=4,
                    lambda_coverage=0.0,
                    num_projections=64,
                    batch_size=256,
                    epochs=25,
                    steps_per_epoch=8,
                    seed=0,
                )
            ),
        ),
    ],
)
def test_generator_choice(benchmark, name, factory):
    population, sample, marginals, truth = _setup()
    error, coverage = benchmark.pedantic(
        _score,
        args=(factory(), population, sample, marginals, truth),
        rounds=1,
        iterations=1,
    )
    print(f"\n{name}: avg%err(incl. missing groups)={error:.1f} "
          f"group_coverage={coverage:.0%}")
    # Every generator must recover a usable share of the group space.
    assert coverage >= 0.5
    # The categorical-domain specialists should be accurate here.
    if name in ("ipf-synth", "bayesnet"):
        assert coverage == 1.0
