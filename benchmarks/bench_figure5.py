"""Bench: regenerate Figure 5 (spiral: sample vs M-SWG generated sample)."""

from repro.experiments import figure5


def test_figure5(run_once):
    result = run_once(figure5.run, figure5.quick_config())
    print()
    print(result.render())

    by_dataset = {row["dataset"]: row for row in result.rows}
    sample = by_dataset["biased sample"]
    generated = by_dataset["M-SWG generated"]
    # "the generated data more closely matches the marginals":
    assert generated["W1_x"] < sample["W1_x"]
    assert generated["W1_y"] < sample["W1_y"]
    # "...while maintaining the spiral shape": the generated cloud is no
    # farther from the population than the biased sample was.
    assert (
        generated["sliced_W1_to_population"]
        < sample["sliced_W1_to_population"] * 1.5
    )
