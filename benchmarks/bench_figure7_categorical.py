"""Bench: regenerate Figure 7 right (flights queries 5-8, Unif/IPF/M-SWG)."""

import numpy as np

from repro.experiments import figure7


def test_figure7_categorical(run_once):
    result = run_once(figure7.run, figure7.quick_config("categorical"))
    print()
    print(result.render())

    rows = {row["query"]: row for row in result.rows}

    # Paper's shape 1: "Unif and IPF get close to zero error for query 5"
    # (popular carriers, bias-aligned predicate).
    assert rows["5"]["Unif"] < 10.0
    assert rows["5"]["IPF"] < 10.0

    # Paper's shape 2 (the headline weakness): on query 8 M-SWG "does not
    # generate any flights with the carrier 'US'" — rare carriers are
    # light hitters the generator misses. Our check: M-SWG either misses
    # at least one of the US/F9 groups or errs far worse than IPF.
    mswg_q8 = rows["8"]["M-SWG"]
    missing_groups = rows["8"]["M-SWG_groups"] != "2/2"
    assert missing_groups or np.isnan(mswg_q8) or mswg_q8 > rows["8"]["IPF"]

    # Popular-carrier group-bys are answered completely by every method.
    for qid in ("5", "6", "7"):
        assert rows[qid]["Unif_groups"] == "2/2"
        assert rows[qid]["IPF_groups"] == "2/2"
