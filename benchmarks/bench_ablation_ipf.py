"""Ablation: IPF raking — scaling, convergence, and raking-vs-cube parity.

DESIGN.md calls out tuple raking (vs a dense contingency cube) as the key
implementation choice for IPF; this bench quantifies why: raking cost
scales with sample rows, the cube with the domain cross-product.
"""

import numpy as np
import pytest

from repro.catalog.metadata import Marginal
from repro.relational.relation import Relation
from repro.reweight.cube import cube_ipf
from repro.reweight.ipf import ipf_reweight


def _make_case(rows: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    sample = Relation.from_dict(
        {
            "a": rng.choice([f"a{i}" for i in range(20)], size=rows).tolist(),
            "b": rng.choice([f"b{i}" for i in range(15)], size=rows).tolist(),
        }
    )
    population = Relation.from_dict(
        {
            "a": rng.choice([f"a{i}" for i in range(20)], size=rows * 10).tolist(),
            "b": rng.choice([f"b{i}" for i in range(15)], size=rows * 10).tolist(),
        }
    )
    marginals = [
        Marginal.from_data(population, ["a"]),
        Marginal.from_data(population, ["b"]),
    ]
    return sample, marginals


@pytest.mark.parametrize("rows", [1_000, 10_000, 50_000])
def test_raking_scales_with_rows(benchmark, rows):
    sample, marginals = _make_case(rows)
    result = benchmark(ipf_reweight, sample, marginals, max_iterations=50)
    assert result.converged


def test_raking_matches_cube(benchmark):
    """Raking and cube IPF agree on the fitted joint (occupied cells)."""
    sample, marginals = _make_case(3_000)
    raked = benchmark(ipf_reweight, sample, marginals, tolerance=1e-12)

    domains = [sorted({str(v) for v in sample.column(c)}) for c in ("a", "b")]
    seed = np.zeros((len(domains[0]), len(domains[1])))
    a_index = {v: i for i, v in enumerate(domains[0])}
    b_index = {v: i for i, v in enumerate(domains[1])}
    for a, b in zip(sample.column("a"), sample.column("b")):
        seed[a_index[str(a)], b_index[str(b)]] += 1
    cube = cube_ipf(["a", "b"], domains, marginals, seed_table=seed, tolerance=1e-12)

    fitted = Marginal.from_data(sample, ["a", "b"], weights=raked.weights)
    for key, mass in fitted.cells():
        assert mass == pytest.approx(cube.mass(key), rel=1e-5)


def test_convergence_iterations_reported(benchmark):
    sample, marginals = _make_case(5_000)
    result = benchmark(ipf_reweight, sample, marginals)
    print(f"\nIPF converged in {result.iterations} iterations "
          f"(max rel err {result.max_relative_error:.2e})")
    assert result.iterations < 50
