"""Bench: durable storage — warm restarts vs cold builds, mmap scan tax.

Measures the three promises ARCHITECTURE.md §10 makes:

- **Warm reopen beats cold rebuild >= 10x.**  Cold = DDL + ingest +
  marginal registration + the first SEMI-OPEN and OPEN queries (which
  fit the rake plan and the generator model).  Warm = reopening the same
  ``data_dir`` (mmap + header parse + model restore) and answering the
  same two queries as cache *hits* — the generator fit, by far the
  dominant cold cost, never reruns.
- **Reopen cost is O(columns), not O(rows).**  Restoring a checkpoint
  maps pages instead of copying them, so a 4x larger table must not
  reopen 4x slower.
- **Scanning through the mapping is free-ish.**  CLOSED p50 over the
  mmap-backed restored sample must stay within 10% (plus a 0.05 ms
  timer-jitter floor) of the same scan over ordinary in-memory arrays.

Bit-identity between the cold engine and the reopened one is asserted
in-bench.  ``test_emit_bench_json`` writes ``BENCH_storage.json``;
``check_bench_regression.py`` gates ``warm_reopen_ms`` and
``mmap_closed_p50_ms`` against the committed baseline.
"""

import json
import statistics
import time
from pathlib import Path

import numpy as np

from repro import MosaicDB
from repro.workloads.flights import (
    FlightsConfig,
    bucket_flights,
    flights_marginals,
    make_biased_flights_sample,
    make_flights_population,
)

ROWS = 40_000
SCALING_ROWS = (10_000, 40_000)
SCAN_REPS = 50
REOPEN_REPS = 5

CLOSED_SQL = (
    "SELECT CLOSED carrier, COUNT(*) AS n, SUM(distance) AS s, "
    "AVG(elapsed_time) AS a FROM FlightsSample "
    "WHERE distance > 2 GROUP BY carrier ORDER BY carrier"
)
SEMI_OPEN_SQL = (
    "SELECT SEMI-OPEN carrier, COUNT(*) AS n FROM Flights "
    "GROUP BY carrier ORDER BY carrier"
)
OPEN_SQL = "SELECT OPEN COUNT(*) AS n FROM Flights WHERE distance > 500"


def _workload(rows: int):
    """Pre-built inputs so data generation never pollutes engine timings."""
    config = FlightsConfig(rows=rows)
    rng = np.random.default_rng(17)
    population = make_flights_population(config, rng)
    sample, _, _ = make_biased_flights_sample(population, config, rng)
    return bucket_flights(sample, config), flights_marginals(population, config)


def _build_cold(
    data_dir: str, sample, marginals, fit_generator: bool = True
) -> tuple[MosaicDB, float]:
    """Cold path: DDL + ingest + marginals + the model-fitting queries."""
    start = time.perf_counter()
    db = MosaicDB(seed=9, data_dir=data_dir)
    db.execute(
        "CREATE GLOBAL POPULATION Flights (carrier TEXT, taxi_out INT, "
        "taxi_in INT, elapsed_time INT, distance INT)"
    )
    db.execute("CREATE SAMPLE FlightsSample AS (SELECT * FROM Flights)")
    db.ingest_relation("FlightsSample", sample)
    for marginal in marginals:
        db.register_marginal(marginal.name, "Flights", marginal)
    db.execute(SEMI_OPEN_SQL)  # fits the rake plan
    if fit_generator:
        db.execute(OPEN_SQL)  # fits the generator model (the dominant cost)
    return db, (time.perf_counter() - start) * 1000.0


def _reopen_warm(data_dir: str) -> tuple[MosaicDB, float]:
    """Warm path: mmap restore + the same two queries as model-cache hits."""
    start = time.perf_counter()
    db = MosaicDB(seed=9, data_dir=data_dir)
    semi = db.execute(SEMI_OPEN_SQL)
    opened = db.execute(OPEN_SQL)
    elapsed = (time.perf_counter() - start) * 1000.0
    for result in (semi, opened):
        assert any("cache hit" in note for note in result.notes), result.notes
    return db, elapsed


def _rows_of(db: MosaicDB, sql: str):
    rel = db.execute(sql).relation
    return {name: rel.column(name) for name in rel.column_names}


def _assert_identical(a, b, context: str) -> None:
    assert list(a) == list(b), context
    for name in a:
        np.testing.assert_array_equal(a[name], b[name], err_msg=context)


def _p50(db: MosaicDB) -> float:
    db.execute(CLOSED_SQL)  # warm the plan cache
    times = []
    for _ in range(SCAN_REPS):
        start = time.perf_counter()
        db.execute(CLOSED_SQL)
        times.append((time.perf_counter() - start) * 1000.0)
    return statistics.median(times)


def test_emit_bench_json(tmp_path):
    sample, marginals = _workload(ROWS)

    # --- cold build, then clean close (final checkpoint, empty WAL) ---
    data_dir = tmp_path / "main"
    db, cold_ms = _build_cold(str(data_dir), sample, marginals)
    cold_closed = _rows_of(db, CLOSED_SQL)
    cold_semi = _rows_of(db, SEMI_OPEN_SQL)
    db.close()

    # --- warm reopens: best-of-N to shave scheduler noise ---
    reopen_times = []
    restored_models = 0
    for _ in range(REOPEN_REPS):
        db, warm_ms = _reopen_warm(str(data_dir))
        reopen_times.append(warm_ms)
        restored_models = db.cache_stats()["storage"]["restored_models"]
        db.close()
    warm_reopen_ms = min(reopen_times)

    # --- bit-identity: the reopened engine answers exactly the same.
    # (Each engine's first OPEN execution consumes the first session RNG
    # draw, so cold-vs-warm first OPEN results are exactly comparable;
    # _reopen_warm already ran OPEN once, matching the cold build.)
    db, _ = _reopen_warm(str(data_dir))
    _assert_identical(cold_closed, _rows_of(db, CLOSED_SQL), CLOSED_SQL)
    _assert_identical(cold_semi, _rows_of(db, SEMI_OPEN_SQL), SEMI_OPEN_SQL)
    mmap_p50 = _p50(db)
    db.close()

    # --- the same scan over plain in-memory arrays (no data_dir) ---
    inmem = MosaicDB(seed=9)
    inmem.execute(
        "CREATE GLOBAL POPULATION Flights (carrier TEXT, taxi_out INT, "
        "taxi_in INT, elapsed_time INT, distance INT)"
    )
    inmem.execute("CREATE SAMPLE FlightsSample AS (SELECT * FROM Flights)")
    inmem.ingest_relation("FlightsSample", sample)
    inmem_p50 = _p50(inmem)
    inmem.close()

    # --- reopen scaling: 4x the rows must not mean 4x the reopen ---
    reopen_by_rows = {}
    for rows in SCALING_ROWS:
        scale_sample, scale_marginals = _workload(rows)
        scale_dir = tmp_path / f"scale-{rows}"
        # No generator fit here: scaling isolates the reopen itself.
        db, _ = _build_cold(
            str(scale_dir), scale_sample, scale_marginals, fit_generator=False
        )
        db.close()
        times = []
        for _ in range(REOPEN_REPS):
            start = time.perf_counter()
            db = MosaicDB(seed=9, data_dir=str(scale_dir))
            times.append((time.perf_counter() - start) * 1000.0)
            db.close()
        reopen_by_rows[str(rows)] = round(min(times), 3)

    row_factor = SCALING_ROWS[-1] / SCALING_ROWS[0]
    scaling_ratio = (
        reopen_by_rows[str(SCALING_ROWS[-1])]
        / reopen_by_rows[str(SCALING_ROWS[0])]
    )

    payload = {
        "workload": (
            f"flights rows={ROWS}: cold DDL+ingest+marginals+rake fit+"
            "generator fit vs warm mmap reopen with persisted models"
        ),
        "rows": ROWS,
        "cold_ingest_fit_ms": round(cold_ms, 3),
        "warm_reopen_ms": round(warm_reopen_ms, 3),
        "warm_speedup": round(cold_ms / warm_reopen_ms, 1),
        "restored_models": restored_models,
        "reopen_ms_by_rows": reopen_by_rows,
        "reopen_scaling_row_factor": row_factor,
        "reopen_scaling_time_ratio": round(scaling_ratio, 3),
        "inmem_closed_p50_ms": round(inmem_p50, 4),
        "mmap_closed_p50_ms": round(mmap_p50, 4),
        "mmap_overhead_pct": round((mmap_p50 - inmem_p50) / inmem_p50 * 100, 1),
        "scan_reps": SCAN_REPS,
        "bit_identical": True,  # asserted above, CLOSED and SEMI-OPEN
    }
    out_path = Path(__file__).resolve().parent.parent / "BENCH_storage.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    # Acceptance: the §10 budgets hold on every run.
    assert cold_ms >= 10.0 * warm_reopen_ms, payload
    assert scaling_ratio <= row_factor / 2.0, payload
    assert mmap_p50 <= 1.10 * inmem_p50 + 0.05, payload
