"""Bench: multi-session read scaling and mixed read/write latency.

Exercises the Engine / Session split on the 30k-row flights workload:

- **Read throughput**: 1/2/4/8 threads, one session per thread, each
  hammering a mix of cached SELECTs (CLOSED grouped aggregate, CLOSED
  filter + aggregate, SEMI-OPEN grouped aggregate over the sample).  All
  plans and reweights are primed, so the measured path is: read-lock →
  catalog lookup → plan-cache hit → vectorized execution.
- **Mixed read/write**: 7 reader threads against 1 writer issuing
  INSERT / UPDATE WEIGHTS, reporting read and write latency percentiles
  under write-lock interference.

``test_emit_bench_json`` writes ``BENCH_concurrency.json`` for the CI
perf trajectory.  Thread scaling is hardware-dependent: the numpy kernels
release the GIL, so the read side scales with physical cores (the payload
records ``cpu_count`` — on a single-core box the expected speedup is ~1x,
and the 8-thread acceptance target of >= 3x applies to >= 4-core runners).
"""

import json
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro import MosaicDB
from repro.workloads.flights import (
    FlightsConfig,
    bucket_flights,
    flights_marginals,
    make_flights_population,
)

CONFIG = FlightsConfig(rows=30_000)

READ_MIX = (
    "SELECT CLOSED carrier, AVG(distance) AS d FROM Flights GROUP BY carrier",
    "SELECT CLOSED carrier, COUNT(*) AS n, AVG(elapsed_time) AS t "
    "FROM Flights WHERE distance > 500 GROUP BY carrier",
    "SELECT SEMI-OPEN carrier, AVG(distance) AS d FROM S GROUP BY carrier",
)
THREAD_COUNTS = (1, 2, 4, 8)
OPS_PER_THREAD = 150


@pytest.fixture(scope="module")
def flights_db():
    rng = np.random.default_rng(0)
    population = make_flights_population(CONFIG, rng)
    db = MosaicDB(seed=0)
    db.execute(
        "CREATE GLOBAL POPULATION Flights "
        "(carrier TEXT, taxi_out INT, taxi_in INT, elapsed_time INT, distance INT)"
    )
    db.execute("CREATE SAMPLE S AS (SELECT * FROM Flights)")
    from repro.mechanisms.biased import PredicateBiasedMechanism
    from repro.workloads.flights import long_flight_predicate

    mechanism = PredicateBiasedMechanism(long_flight_predicate(CONFIG), 5.0, 0.95)
    sample_rows = population.take(mechanism.draw(population, db.rng))
    db.ingest_relation("S", bucket_flights(sample_rows, CONFIG))
    for marginal in flights_marginals(population, CONFIG):
        db.register_marginal(marginal.name, "Flights", marginal)
    for sql in READ_MIX:  # prime plan + reweight caches
        db.execute(sql)
    return db


def _read_throughput(db: MosaicDB, threads: int, ops_per_thread: int) -> float:
    """Aggregate cached-SELECT queries/second across ``threads`` sessions."""
    sessions = [db.connect() for _ in range(threads)]
    barrier = threading.Barrier(threads + 1)
    errors: list[Exception] = []

    def worker(session):
        try:
            barrier.wait()
            for i in range(ops_per_thread):
                session.execute(READ_MIX[i % len(READ_MIX)])
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    pool = [threading.Thread(target=worker, args=(s,)) for s in sessions]
    for t in pool:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in pool:
        t.join()
    elapsed = time.perf_counter() - start
    assert not errors, errors
    return threads * ops_per_thread / elapsed


def _mixed_latencies(db: MosaicDB, readers: int = 7, duration_s: float = 1.0):
    """Read/write latency (ms percentiles) with one writer interfering."""
    stop = threading.Event()
    read_latencies: list[float] = []
    write_latencies: list[float] = []
    lat_mutex = threading.Lock()
    errors: list[Exception] = []

    def reader(session):
        local: list[float] = []
        try:
            while not stop.is_set():
                t0 = time.perf_counter()
                session.execute(READ_MIX[0])
                local.append((time.perf_counter() - t0) * 1000.0)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
        with lat_mutex:
            read_latencies.extend(local)

    def writer(session):
        local: list[float] = []
        try:
            while not stop.is_set():
                t0 = time.perf_counter()
                session.execute("INSERT INTO S VALUES ('WN', 1, 1, 100, 500)")
                session.execute("UPDATE SAMPLE S SET WEIGHT = weight * 1")
                local.append((time.perf_counter() - t0) * 1000.0)
                time.sleep(0.005)  # a writer that is busy, not saturating
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
        with lat_mutex:
            write_latencies.extend(local)

    threads = [
        threading.Thread(target=reader, args=(db.connect(),)) for _ in range(readers)
    ] + [threading.Thread(target=writer, args=(db.connect(),))]
    for t in threads:
        t.start()
    time.sleep(duration_s)
    stop.set()
    for t in threads:
        t.join()
    assert not errors, errors

    def percentiles(values):
        if not values:
            return {"p50_ms": None, "p95_ms": None}
        return {
            "p50_ms": round(float(np.percentile(values, 50)), 4),
            "p95_ms": round(float(np.percentile(values, 95)), 4),
        }

    return {
        "readers": readers,
        "writers": 1,
        "read": {**percentiles(read_latencies), "ops": len(read_latencies)},
        "write": {**percentiles(write_latencies), "ops": len(write_latencies)},
    }


def test_single_session_cached_select(benchmark, flights_db):
    result = benchmark(flights_db.execute, READ_MIX[0])
    assert result.num_rows > 0


def test_eight_thread_read_stress(flights_db):
    """Smoke: 8 concurrent sessions complete their read mix without error."""
    qps = _read_throughput(flights_db, threads=8, ops_per_thread=30)
    assert qps > 0


def test_emit_bench_json(flights_db):
    """Write BENCH_concurrency.json: thread scaling + mixed r/w latency."""
    import os

    throughput = {}
    for threads in THREAD_COUNTS:
        throughput[str(threads)] = round(
            _read_throughput(flights_db, threads, OPS_PER_THREAD), 2
        )

    payload = {
        "workload": f"flights rows={CONFIG.rows}, cached read mix of {len(READ_MIX)}",
        "cpu_count": os.cpu_count(),
        "read_qps_by_threads": throughput,
        "speedup_8x_over_1x": round(throughput["8"] / throughput["1"], 2),
        "mixed_read_write": _mixed_latencies(flights_db),
    }
    out_path = Path(__file__).resolve().parent.parent / "BENCH_concurrency.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    # Correctness floor (scaling is hardware-dependent and recorded above):
    # concurrency must never *lose* completed work.
    assert all(qps > 0 for qps in throughput.values())
