"""Bench: regenerate Figure 6 (Unif vs M-SWG on 2-D box counts)."""

from repro.experiments import figure6


def test_figure6(run_once):
    result = run_once(figure6.run, figure6.quick_config())
    print()
    print(result.render())

    means: dict[tuple, float] = {
        (row["coverage"], row["method"]): row["mean"] for row in result.rows
    }
    coverages = sorted({row["coverage"] for row in result.rows})

    # Paper's shape: "we always outperform the uniformly reweighted sample
    # except when the range is very narrow". M-SWG must win on every
    # non-narrow coverage (> 0.2).
    for coverage in coverages:
        if coverage > 0.2:
            assert means[(coverage, "M-SWG")] < means[(coverage, "Unif")], (
                f"M-SWG should beat Unif at coverage {coverage}"
            )

    # Both methods' errors shrink as the boxes widen.
    widest, narrowest = max(coverages), min(coverages)
    for method in ("Unif", "M-SWG"):
        assert means[(widest, method)] < means[(narrowest, method)]
