"""Legacy setuptools shim.

The environment has no ``wheel`` package, so PEP 517 editable installs
(``pip install -e .``) cannot build; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to
``setup.py develop``.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
