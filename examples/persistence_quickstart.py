"""Quickstart: durable storage — checkpoints, WAL replay, warm restarts.

Run with::

    python examples/persistence_quickstart.py

Tours the PR 10 storage surface: give ``MosaicDB`` a ``data_dir`` and
the catalog, sample weights, marginals, and *fitted models* survive
process death.  The demo builds a small people database, runs queries
at all three visibilities (fitting a rake plan and a generator model),
checkpoints, mutates an unrelated table (WAL only), "crashes" without
a final checkpoint, reopens the directory, and shows the restart is
warm: O(1) mmap reopen, WAL replay, model-cache hits on the first
SEMI-OPEN/OPEN query, and bit-identical answers.
"""

import shutil
import tempfile

import numpy as np

from repro import MosaicDB

SETUP = """
CREATE GLOBAL POPULATION People (country TEXT, age INT);
CREATE TABLE counts (country TEXT, n INT);
INSERT INTO counts VALUES ('UK', 120), ('FR', 200), ('DE', 150);
CREATE METADATA People_M1 AS (SELECT country, n FROM counts);
CREATE SAMPLE S AS (SELECT * FROM People)
"""

QUERIES = (
    "SELECT CLOSED country, COUNT(*) FROM S GROUP BY country",
    "SELECT SEMI-OPEN country, COUNT(*) FROM People GROUP BY country",
    "SELECT OPEN COUNT(*) FROM People WHERE age >= 40",
)


def run_queries(db: MosaicDB) -> list:
    out = []
    for sql in QUERIES:
        result = db.execute(sql)
        rel = result.relation
        out.append({name: rel.column(name) for name in rel.column_names})
        hits = [note for note in result.notes if "cache hit" in note]
        print(f"  {sql}")
        if hits:
            print(f"    -> {hits[0]}")
    return out


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="mosaic-quickstart-")
    rng = np.random.default_rng(42)

    # 1. Cold boot: build the catalog, fit models by querying, then
    #    checkpoint — pages + manifest + the fitted models.
    db = MosaicDB(seed=7, data_dir=data_dir)
    db.execute_script(SETUP)
    rows = [
        (country, int(rng.integers(18, 80)))
        for country in ("UK",) * 40 + ("FR",) * 30 + ("DE",) * 30
    ]
    db.ingest_rows("S", rows)

    print("cold engine (models fitted here):")
    before = run_queries(db)
    db.commit()  # checkpoint persists the models fitted above

    # A mutation after the checkpoint lives only in the WAL.  It touches
    # a fresh table, so the persisted models stay current across replay.
    db.execute("CREATE TABLE audit (event TEXT)")
    db.execute("INSERT INTO audit VALUES ('post-checkpoint')")

    # ...and we crash without a final checkpoint (db.close() would
    # checkpoint cleanly; real crashes don't get the chance).
    db.engine._durable.close()
    db.close()

    # 2. Warm boot: mmap the checkpoint pages (O(columns), not O(rows)),
    #    replay the WAL tail, restore still-current fitted models.
    db2 = MosaicDB(seed=7, data_dir=data_dir)
    storage = db2.cache_stats()["storage"]
    print(
        f"\nwarm restart: {storage['restored_tables']} table(s), "
        f"{storage['restored_samples']} sample(s), "
        f"{storage['restored_models']} model(s), "
        f"{storage['wal_replayed']} WAL record(s) replayed "
        f"in {storage['restore_ms']:.1f}ms"
    )
    assert storage["restored_models"] >= 1
    assert storage["wal_replayed"] >= 1
    db2.catalog.auxiliary("audit")  # the WAL-only table came back
    print("replayed post-checkpoint mutation verified")

    print("\nwarm engine (note the cache hits):")
    after = run_queries(db2)

    for sql, a, b in zip(QUERIES, before, after):
        for name in a:
            np.testing.assert_array_equal(a[name], b[name], err_msg=sql)
    print("\nall three visibilities bit-identical across the restart")

    db2.close()
    shutil.rmtree(data_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
