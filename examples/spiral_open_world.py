"""Open-world generation on the spiral (the paper's Fig. 5/6 workload).

Trains the M-SWG on a biased spiral sample plus the population's two 1-D
marginals, renders before/after ASCII scatter plots, and compares box-count
query accuracy between uniform reweighting and M-SWG generation.

Run with::

    python examples/spiral_open_world.py
"""

import numpy as np

from repro.experiments.ascii_plot import ascii_scatter
from repro.generative.losses.wasserstein import wasserstein_1d
from repro.generative.mswg import MSWG, MswgConfig
from repro.metrics.error import percent_difference
from repro.reweight.weights import uniform_weights
from repro.workloads.queries import random_box_queries
from repro.workloads.spiral import (
    SpiralConfig,
    make_biased_spiral_sample,
    make_spiral_population,
    spiral_marginals,
)


def main() -> None:
    spiral = SpiralConfig(population_size=30_000, sample_size=3_000)
    rng = np.random.default_rng(0)
    population = make_spiral_population(spiral, rng)
    sample, _ = make_biased_spiral_sample(population, spiral, rng)
    marginals = spiral_marginals(population, spiral)

    print("biased sample (#) over population (.):")
    print(ascii_scatter(
        population.column("x"), population.column("y"),
        sample.column("x"), sample.column("y"),
        width=60, height=24,
    ))

    config = MswgConfig(
        hidden_layers=3, hidden_units=100, latent_dim=2,
        lambda_coverage=0.04, batch_size=500, epochs=30, seed=0,
    )
    print("\ntraining M-SWG (3x100 ReLU, lambda=0.04, latent=2) ...")
    model = MSWG(config)
    history = model.fit(sample, marginals)
    print(f"final training loss: {history.final_loss:.5f}")

    generated = model.generate(3_000, rng=np.random.default_rng(1))
    print("\nM-SWG sample (#) over population (.):")
    print(ascii_scatter(
        population.column("x"), population.column("y"),
        generated.column("x"), generated.column("y"),
        width=60, height=24,
    ))

    for axis in ("x", "y"):
        before = wasserstein_1d(sample.column(axis), population.column(axis))
        after = wasserstein_1d(generated.column(axis), population.column(axis))
        print(f"W1({axis}) to population marginal: sample {before:.4f} -> "
              f"generated {after:.4f}")

    print("\nbox-count accuracy (20 random boxes at 50% width coverage):")
    boxes = random_box_queries(np.random.default_rng(2), population, 0.5, 20)
    unif_weights = uniform_weights(sample.num_rows, population.num_rows)
    generated_weights = uniform_weights(generated.num_rows, population.num_rows)
    unif_errors, mswg_errors = [], []
    for box in boxes:
        truth = box.count(population)
        if truth == 0:
            continue
        unif_errors.append(percent_difference(box.count(sample, unif_weights), truth))
        mswg_errors.append(
            percent_difference(box.count(generated, generated_weights), truth)
        )
    print(f"  uniform reweighting: mean {np.mean(unif_errors):6.1f}% error")
    print(f"  M-SWG generation:    mean {np.mean(mswg_errors):6.1f}% error")


if __name__ == "__main__":
    main()
