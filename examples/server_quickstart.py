"""Quickstart: serve a Mosaic engine over TCP and query it with the client.

Run with::

    python examples/server_quickstart.py

Boots the Sec. 2 migrants database, starts the asyncio wire server on an
ephemeral port (in a background thread — ``python -m repro.server`` is
the standalone equivalent), then queries it through
:class:`repro.client.Client`: results travel as columnar frames (raw
little-endian buffers for numerics, dictionary vocab + codes for TEXT)
and arrive as the same ``QueryResult`` the in-process API returns, with
server-side errors re-raised as their original exception types.
"""

from repro.client import Client, Connection
from repro.errors import UnknownRelationError
from repro.server.server import MosaicServer
from repro.workloads.migrants import build_migrants_database


def main() -> None:
    # 1. Build the engine in-process: populations, marginals, a biased
    #    Yahoo-only sample (the paper's motivating example).
    db, _population = build_migrants_database(seed=0)

    # 2. Serve it. One server session per client connection; blocking
    #    query execution is bridged onto a thread pool so the event loop
    #    keeps accepting connections while queries run.
    server = MosaicServer(
        db.engine,
        port=0,  # pick a free port
        session_config=db.session.config,
        max_connections=32,
    ).start_in_thread()
    print(f"serving on 127.0.0.1:{server.port}\n")

    # 3. Query over the wire with the pooled client.
    with Client("127.0.0.1", server.port, pool_size=2) as client:
        semi = client.execute(
            "SELECT SEMI-OPEN country, COUNT(*) AS migrants "
            "FROM EuropeMigrants GROUP BY country"
        )
        print("SEMI-OPEN per-country estimate (debiased over the wire):")
        print(semi.pretty(), "\n")

        closed = client.execute(
            "SELECT CLOSED country, COUNT(*) AS n FROM YahooMigrants GROUP BY country"
        )
        print("CLOSED counts of the raw biased sample:")
        print(closed.pretty(), "\n")

        # Server errors re-raise as the same MosaicError subclass.
        try:
            client.execute("SELECT CLOSED COUNT(*) AS n FROM Nowhere")
        except UnknownRelationError as exc:
            print(f"server error round-trip: {type(exc).__name__}: {exc}\n")

        stats = client.stats()
        print(
            "server stats: "
            f"{stats['server']['queries_total']} queries, "
            f"{stats['server']['connections']} connection(s), "
            f"plan cache hits {stats['engine']['plans']['hits']}\n"
        )

    # 4. OPEN answers are deterministic per connection: a connection's
    #    session index pins its RNG stream on the server's engine.
    with Connection("127.0.0.1", server.port) as conn:
        opened = conn.execute(
            "SELECT OPEN country, email, COUNT(*) AS n "
            "FROM EuropeMigrants GROUP BY country, email ORDER BY n DESC LIMIT 3"
        )
        print(f"OPEN top cells (session index {conn.session_index}):")
        print(opened.pretty(), "\n")

    # 5. Graceful shutdown: drains in-flight queries, then stops.
    server.stop_in_thread()
    print("server stopped")


if __name__ == "__main__":
    main()
