"""Flights debiasing: the paper's Sec. 5.3 evaluation scenario as a script.

Builds the synthetic IDEBench-style flights population, draws the biased
5 % sample (95 % long flights), registers the four 2-D marginals, and
answers Table 2's queries through the SQL engine — comparing the default
uniform estimate (CLOSED + manual scaling) against SEMI-OPEN IPF
reweighting, with ground truth alongside.

Run with::

    python examples/flights_debiasing.py
"""

import numpy as np

from repro import MosaicDB
from repro.metrics.error import percent_difference
from repro.workloads.flights import (
    FlightsConfig,
    bucket_flights,
    flights_marginals,
    make_flights_population,
)
from repro.workloads.queries import paper_flights_queries


def main() -> None:
    config = FlightsConfig(rows=50_000)
    rng = np.random.default_rng(0)
    population = make_flights_population(config, rng)
    print(f"population: {population.num_rows} flights "
          f"({np.mean(population.column('elapsed_time') > 200):.0%} longer than 200 min)")

    db = MosaicDB(seed=0)
    db.execute(
        "CREATE GLOBAL POPULATION Flights "
        "(carrier TEXT, taxi_out INT, taxi_in INT, elapsed_time INT, distance INT)"
    )

    # Draw the paper's biased sample through the mechanism machinery.
    from repro.mechanisms.biased import PredicateBiasedMechanism
    from repro.workloads.flights import long_flight_predicate

    mechanism = PredicateBiasedMechanism(
        long_flight_predicate(config), percent=config.sample_percent,
        bias=config.sample_bias,
    )
    # The mechanism is deliberately NOT declared on the sample: the data
    # scientist doesn't know how the sample was collected, so Mosaic must
    # fall back to IPF against the marginals.
    sample_rows = population.take(mechanism.draw(population, db.rng))
    db.execute("CREATE SAMPLE FlightSample AS (SELECT * FROM Flights)")
    # Register the bucketed view of the sample: marginal cells use the same
    # bucketing, so IPF cell matching works.
    db.ingest_relation("FlightSample", bucket_flights(sample_rows, config))
    print(f"sample: {sample_rows.num_rows} flights, "
          f"{np.mean(sample_rows.column('elapsed_time') > 200):.0%} long "
          "(heavily biased!)\n")

    for marginal in flights_marginals(population, config):
        db.register_marginal(marginal.name, "Flights", marginal)

    print(f"{'query':>5} | {'truth':>9} | {'CLOSED (biased)':>16} | "
          f"{'SEMI-OPEN (IPF)':>16} | {'IPF err':>8}")
    print("-" * 70)
    for query in paper_flights_queries():
        if query.group_by is not None:
            continue  # keep the console output compact: queries 1-4
        truth = query.evaluate(population)[()]
        closed = db.execute(
            query.to_sql("Flights").replace("SELECT ", "SELECT CLOSED ", 1)
        ).rows()[0][0]
        semi = db.execute(
            query.to_sql("Flights").replace("SELECT ", "SELECT SEMI-OPEN ", 1)
        ).rows()[0][0]
        print(
            f"{query.query_id:>5} | {truth:9.2f} | {closed:16.2f} | "
            f"{semi:16.2f} | {percent_difference(semi, truth):7.2f}%"
        )

    print("\nGroup-by query 5 (popular carriers), SEMI-OPEN:")
    result = db.execute(
        "SELECT SEMI-OPEN carrier, AVG(distance) AS avg_distance FROM Flights "
        "WHERE elapsed_time > 200 AND carrier IN ('WN', 'AA') GROUP BY carrier"
    )
    print(result.pretty())


if __name__ == "__main__":
    main()
