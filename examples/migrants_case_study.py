"""The paper's Sec. 2 motivating example, end to end, with ground truth.

A data scientist wants migrants per (country, email provider) but only
has a Yahoo-only sample plus Eurostat-style reported counts.  This script
builds the scenario, runs all three visibility levels, and scores each
answer against the (hidden) ground-truth population — reproducing the
CLOSED/SEMI-OPEN/OPEN trade-off table of Sec. 3.3.

Run with::

    python examples/migrants_case_study.py
"""

from repro.metrics.error import average_percent_difference
from repro.relational.groupby import group_rows
from repro.workloads.migrants import build_migrants_database


def main() -> None:
    db, population = build_migrants_database(seed=0, open_repetitions=5)

    truth = {
        key: float(len(indices))
        for key, indices in group_rows(population, ["country", "email"])
    }
    print(f"ground truth: {population.num_rows} migrants across {len(truth)} "
          "(country, email) groups — hidden from the database\n")

    sql = (
        "SELECT {vis} country, email, COUNT(*) AS n "
        "FROM EuropeMigrants GROUP BY country, email"
    )
    for visibility in ("CLOSED", "SEMI-OPEN", "OPEN"):
        result = db.execute(sql.format(vis=visibility))
        answered = {
            (r["country"], r["email"]): float(r["n"]) for r in result.to_pylist()
        }
        false_negatives = len(set(truth) - set(answered))
        false_positives = len(set(answered) - set(truth))
        error = average_percent_difference(answered, truth)
        print(f"=== {visibility} ===")
        print(result.pretty(max_rows=8))
        print(
            f"groups answered: {len(answered)}/{len(truth)}  "
            f"false negatives: {false_negatives}  "
            f"false positives: {false_positives}  "
            f"avg % error on common groups: "
            f"{'n/a' if error is None else f'{error:.1f}%'}"
        )
        for note in result.notes:
            print(f"  note: {note}")
        print()

    print("Paper Sec. 3.3 recap: CLOSED and SEMI-OPEN never invent tuples")
    print("(zero false positives, many false negatives); OPEN trades a few")
    print("potential false positives for far fewer false negatives.")


if __name__ == "__main__":
    main()
