"""Quickstart: declare a population, attach metadata, query a biased sample.

Run with::

    python examples/quickstart.py

This walks the smallest possible Mosaic session: an auxiliary staging
table, a global population, marginal metadata, a sample with known bias,
and the three visibility levels side by side.
"""

from repro import MosaicDB


def main() -> None:
    db = MosaicDB(seed=0)

    # 1. Stage ground-truth aggregates in an ordinary (auxiliary) table.
    #    A city's transit agency reports how many commuters use each mode.
    db.execute(
        "CREATE TABLE ModeReport (mode TEXT, reported_count INT)"
    )
    db.execute(
        "INSERT INTO ModeReport VALUES "
        "('car', 5000), ('bus', 3000), ('bike', 2000)"
    )

    # 2. Declare the population of interest — its tuples do NOT exist in
    #    the database; only the declaration does.
    db.execute("CREATE GLOBAL POPULATION Commuters (mode TEXT, minutes FLOAT)")

    # 3. Attach the report as marginal metadata (the <population>_Mk naming
    #    convention binds it to Commuters automatically).
    db.execute(
        "CREATE METADATA Commuters_M1 AS "
        "(SELECT mode, reported_count FROM ModeReport)"
    )

    # 4. Declare a sample and ingest survey rows. The survey happened at a
    #    bike event, so cyclists are heavily over-represented.
    db.execute("CREATE SAMPLE Survey AS (SELECT * FROM Commuters)")
    rows = (
        [("bike", 25.0)] * 60
        + [("car", 30.0)] * 25
        + [("bus", 45.0)] * 15
    )
    db.ingest_rows("Survey", rows)

    # 5. Ask the same question at each visibility level.
    sql = "SELECT {vis} mode, COUNT(*) AS commuters FROM Commuters GROUP BY mode"

    closed = db.execute(sql.format(vis="CLOSED"))
    print("CLOSED (raw sample counts — the bike-event bias is untouched):")
    print(closed.pretty(), end="\n\n")

    semi_open = db.execute(sql.format(vis="SEMI-OPEN"))
    print("SEMI-OPEN (IPF reweighting against the agency report):")
    print(semi_open.pretty(), end="\n\n")
    for note in semi_open.notes:
        print(f"  note: {note}")

    # The weighted AVG uses the same debiased weights.
    avg = db.execute("SELECT SEMI-OPEN AVG(minutes) AS avg_commute FROM Commuters")
    print(f"\nDebiased average commute: {avg.scalar():.1f} minutes")
    print("(raw sample average would be "
          f"{db.execute('SELECT CLOSED AVG(minutes) AS a FROM Commuters').scalar():.1f}"
          " — dragged down by all those cyclists)")


if __name__ == "__main__":
    main()
