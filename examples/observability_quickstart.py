"""Quickstart: trace queries, read EXPLAIN ANALYZE, and scrape metrics.

Run with::

    python examples/observability_quickstart.py

Tours the PR 9 observability surface on the Sec. 2 migrants database:
``EXPLAIN ANALYZE`` in-process (per-span and per-plan-node timings, OPEN
repetition telemetry), always-on sampled tracing over the wire (the
``trace`` response-header field with the server's queue/execute/encode
phases), ``Client.metrics()``, and the Prometheus ``/metrics`` endpoint
a real deployment would point its scraper at.
"""

import os
import urllib.request

# Trace every query for the demo; production leaves this unset and gets
# the deterministic 1-in-64 default, whose p50 cost on the CLOSED hot
# path is zero (the median query runs the untraced path).
os.environ["MOSAIC_TRACE_SAMPLE"] = "1"

from repro.client import Client
from repro.server.server import MosaicServer
from repro.workloads.migrants import build_migrants_database


def main() -> None:
    db, _population = build_migrants_database(seed=0)
    session = db.connect()

    # 1. EXPLAIN ANALYZE: the executed plan as a (step, detail, ms)
    #    relation — trace id, spans, per-node rows/timings, provenance.
    print("EXPLAIN ANALYZE, CLOSED:")
    print(
        session.execute(
            "EXPLAIN ANALYZE SELECT CLOSED country, COUNT(*) AS n "
            "FROM YahooMigrants GROUP BY country"
        ).pretty(),
        "\n",
    )

    #    OPEN queries trade plan nodes for generator telemetry: the fit
    #    span, one generate span per repetition chunk, and the stop
    #    reason with repetitions_used.
    print("EXPLAIN ANALYZE, OPEN:")
    print(
        session.execute(
            "EXPLAIN ANALYZE SELECT OPEN country, email, COUNT(*) AS n "
            "FROM EuropeMigrants GROUP BY country, email"
        ).pretty(),
        "\n",
    )

    # 2. Over the wire the trace rides the response header, with the
    #    server's phase timings stamped in.
    server = MosaicServer(
        db.engine,
        port=0,
        session_config=db.session.config,
        slow_query_ms=50.0,  # log queries at/above 50 ms with their trace id
        metrics_port=0,  # serve Prometheus /metrics on a free port
    ).start_in_thread()
    with Client("127.0.0.1", server.port, pool_size=1) as client:
        result = client.execute(
            "SELECT SEMI-OPEN country, COUNT(*) AS migrants "
            "FROM EuropeMigrants GROUP BY country"
        )
        trace = result.trace
        print(f"wire trace {trace['trace_id']}: {trace['total_ms']:.2f} ms total")
        for span in trace["spans"]:
            print(f"  span {span['name']:<10} {span['ms']:.3f} ms")
        phases = trace["server"]
        print(
            "  server phases: "
            f"queue {phases['queue_wait_ms']:.3f} ms, "
            f"execute {phases['execute_ms']:.3f} ms, "
            f"encode {phases['encode_ms']:.3f} ms\n"
        )

        # 3. One registry, three views: STATS `metrics` (shown here),
        #    Engine.cache_stats(), and the Prometheus endpoint below.
        metrics = client.metrics()
        for name in sorted(metrics):
            if name.startswith("mosaic_server_") and "_ms" not in name:
                print(f"{name} = {metrics[name]}")

    with urllib.request.urlopen(
        f"http://127.0.0.1:{server.metrics_exporter.port}/metrics"
    ) as response:
        exposition = response.read().decode("utf-8")
    print("\nPrometheus scrape (first lines):")
    for line in exposition.splitlines()[:8]:
        print(f"  {line}")

    server.stop_in_thread()
    print("\nserver stopped")


if __name__ == "__main__":
    main()
