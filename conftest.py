"""Repo-level pytest configuration: deadlock watchdog + shm leak check.

The engine's readers-writer lock means a locking bug shows up as a *hang*,
not a failure.  When ``MOSAIC_TEST_TIMEOUT`` is set (CI sets 120), a
``faulthandler.dump_traceback_later`` watchdog is re-armed at the start of
every test: a test exceeding the timeout dumps every thread's traceback to
stderr and hard-exits the process, so CI fails with a stack dump instead
of hanging until the job limit.  (``pytest-timeout`` would do the same;
this avoids the extra dependency.)

Local runs are unaffected unless the variable is exported.

The shared-memory leak check compares the ``mosaic-shm-*`` segments in
``/dev/shm`` before and after the whole run: the morsel-execution layer
(``repro.relational.shm``) must unlink every segment it creates, whether
through ``Engine.shutdown()``, store eviction, or the ``ParallelExecution``
finalizer.  A leaked segment survives the process and eats tmpfs until
reboot, so it fails the suite loudly.
"""

from __future__ import annotations

import faulthandler
import gc
import os
import shutil
import sys
import tempfile

import pytest

_TIMEOUT_ENV = "MOSAIC_TEST_TIMEOUT"
_SHM_DIR = "/dev/shm"
_SHM_PREFIX = "mosaic-shm-"
_DATA_DIR_PREFIX = "mosaic-data-"


def _mosaic_segments() -> set[str]:
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:  # non-Linux: no /dev/shm to police
        return set()
    return {name for name in names if name.startswith(_SHM_PREFIX)}


@pytest.fixture(autouse=True, scope="session")
def _no_leaked_shm_segments():
    """Fail the run if any test leaks a mosaic shared-memory segment."""
    before = _mosaic_segments()
    yield
    # Engines dropped without shutdown() release their segments via a
    # weakref finalizer — give the collector a chance to run it first.
    gc.collect()
    leaked = _mosaic_segments() - before
    assert not leaked, (
        f"leaked shared-memory segments in {_SHM_DIR}: {sorted(leaked)}; "
        "some Engine/ParallelExecution was not shut down"
    )


def _mosaic_data_dirs() -> set[str]:
    root = tempfile.gettempdir()
    try:
        names = os.listdir(root)
    except OSError:
        return set()
    return {
        os.path.join(root, name)
        for name in names
        if name.startswith(_DATA_DIR_PREFIX)
    }


@pytest.fixture(autouse=True, scope="session")
def _no_leaked_data_dirs():
    """Sweep ``mosaic-data-*`` temp directories the durable-storage tests
    create (including those orphaned by deliberate SIGKILL crash tests).

    Unlike the shm check this cleans up rather than failing: crash-safety
    tests kill processes mid-checkpoint on purpose, so an orphaned data
    directory is expected debris, not a bug — but it must not accumulate
    across runs.
    """
    before = _mosaic_data_dirs()
    yield
    leaked = _mosaic_data_dirs() - before
    for path in sorted(leaked):
        shutil.rmtree(path, ignore_errors=True)
    if leaked:
        print(
            f"\nconftest: swept {len(leaked)} leftover mosaic data dir(s)",
            file=sys.stderr,
        )


def _watchdog_seconds() -> float:
    try:
        return float(os.environ.get(_TIMEOUT_ENV, "0") or 0)
    except ValueError:
        return 0.0


def pytest_runtest_protocol(item, nextitem):
    timeout = _watchdog_seconds()
    if timeout > 0:
        # Re-arming replaces the previous timer, so the budget is per test.
        faulthandler.dump_traceback_later(timeout, exit=True)
    return None  # run the default protocol


def pytest_sessionfinish(session, exitstatus):
    if _watchdog_seconds() > 0:
        faulthandler.cancel_dump_traceback_later()
