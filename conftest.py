"""Repo-level pytest configuration: a deadlock watchdog for the test run.

The engine's readers-writer lock means a locking bug shows up as a *hang*,
not a failure.  When ``MOSAIC_TEST_TIMEOUT`` is set (CI sets 120), a
``faulthandler.dump_traceback_later`` watchdog is re-armed at the start of
every test: a test exceeding the timeout dumps every thread's traceback to
stderr and hard-exits the process, so CI fails with a stack dump instead
of hanging until the job limit.  (``pytest-timeout`` would do the same;
this avoids the extra dependency.)

Local runs are unaffected unless the variable is exported.
"""

from __future__ import annotations

import faulthandler
import os

_TIMEOUT_ENV = "MOSAIC_TEST_TIMEOUT"


def _watchdog_seconds() -> float:
    try:
        return float(os.environ.get(_TIMEOUT_ENV, "0") or 0)
    except ValueError:
        return 0.0


def pytest_runtest_protocol(item, nextitem):
    timeout = _watchdog_seconds()
    if timeout > 0:
        # Re-arming replaces the previous timer, so the budget is per test.
        faulthandler.dump_traceback_later(timeout, exit=True)
    return None  # run the default protocol


def pytest_sessionfinish(session, exitstatus):
    if _watchdog_seconds() > 0:
        faulthandler.cancel_dump_traceback_later()
